package workload

import (
	"fmt"
	"math/rand/v2"

	"eventsys/internal/event"
	"eventsys/internal/filter"
)

// AlertsConfig parameterizes the monitoring-alert workload: the
// ordering- and prefix-heavy population used to evaluate the
// predicate-indexed matching engine at large subscription counts.
type AlertsConfig struct {
	// Metrics is the metric-name pool size; subscriptions pick metrics
	// Zipf-skewed (hot metrics attract most alarms), events uniformly.
	Metrics int
	// Regions, Zones, Hosts shape the topic hierarchy
	// m/r<region>/z<zone>/h<host>; Zones and Hosts are per parent level.
	Regions, Zones, Hosts int
	// Levels is the number of distinct alarm thresholds per side. Level k
	// puts a ceiling alarm at 99.95 - 0.025k (or a floor alarm at
	// 0.05 + 0.025k), so all thresholds crowd the extremes of the [0,100)
	// value range: the median event crosses none of them, which is what
	// real alarm populations look like — alarms that fire on half the
	// stream would be noise, not alerts.
	Levels int
	// Skew is the Zipf exponent for metric popularity and threshold
	// levels (values <= 1 degrade to uniform).
	Skew float64
}

// DefaultAlerts returns the evaluation scale: 20k metrics, 100k hosts,
// thresholds packed into the outer 1% of the value range.
func DefaultAlerts() AlertsConfig {
	return AlertsConfig{Metrics: 20000, Regions: 25, Zones: 40, Hosts: 100, Levels: 40, Skew: 1.4}
}

// Alerts generates monitoring events (metric, value, topic, and a sparse
// note) and alarm subscriptions over them. Every subscription pairs a
// selector — metric equality, a topic prefix at host/zone/region
// granularity, or a note presence/contains test — with a value threshold
// (value >= ceiling or value <= floor), exercising the eq postings,
// sorted threshold arrays, per-length prefix postings, presence lists
// and scan residue of the indexed engine in realistic proportions.
// Deterministic for a seed; not safe for concurrent use.
type Alerts struct {
	cfg     AlertsConfig
	rng     *rand.Rand
	metricZ *Zipf
	levelZ  *Zipf
	seq     uint64
}

// alertNotes is the sparse free-text note pool (1% of events carry one).
var alertNotes = []string{
	"disk almost full", "oom killer invoked", "link flapping",
	"clock drift detected", "raid degraded", "certificate expiring",
}

// NewAlerts constructs the alert workload.
func NewAlerts(seed uint64, cfg AlertsConfig) (*Alerts, error) {
	if cfg.Metrics <= 0 || cfg.Regions <= 0 || cfg.Zones <= 0 || cfg.Hosts <= 0 {
		return nil, fmt.Errorf("workload: alerts pools must be positive: %+v", cfg)
	}
	if cfg.Levels <= 0 || float64(cfg.Levels)*0.025 > 50 {
		return nil, fmt.Errorf("workload: alerts Levels must be in (0, 2000]: %d", cfg.Levels)
	}
	return &Alerts{
		cfg:     cfg,
		rng:     rand.New(rand.NewPCG(seed, seed^0x51ee7ed1ca7e5)),
		metricZ: NewZipf(cfg.Metrics, cfg.Skew),
		levelZ:  NewZipf(cfg.Levels, cfg.Skew),
	}, nil
}

func metricName(i int) string { return fmt.Sprintf("metric-%05d", i) }

// topic renders the fixed-width hierarchical topic, so every hierarchy
// level corresponds to exactly one prefix length in the index.
func (a *Alerts) topic(region, zone, host int) string {
	return fmt.Sprintf("m/r%02d/z%02d/h%03d", region, zone, host)
}

// Event draws a monitoring event: uniform metric, uniform value in
// [0, 100), uniform topic, and a note on 1% of events.
func (a *Alerts) Event() *event.Event {
	b := event.NewBuilder("Alert").
		Str("metric", metricName(a.rng.IntN(a.cfg.Metrics))).
		Float("value", a.rng.Float64()*100).
		Str("topic", a.topic(a.rng.IntN(a.cfg.Regions), a.rng.IntN(a.cfg.Zones), a.rng.IntN(a.cfg.Hosts)))
	if a.rng.Float64() < 0.01 {
		b.Str("note", alertNotes[a.rng.IntN(len(alertNotes))])
	}
	a.seq++
	return b.ID(a.seq).Build()
}

// ceiling and floor draw Zipf-concentrated alarm thresholds: level 0
// (the most popular) almost never fires.
func (a *Alerts) ceiling() float64 { return 99.95 - 0.025*float64(a.levelZ.Draw(a.rng)) }
func (a *Alerts) floor() float64   { return 0.05 + 0.025*float64(a.levelZ.Draw(a.rng)) }

// Subscription draws one alarm filter. The mix (metric ceilings 50%,
// metric floors 20%, topic alarms 28% — overwhelmingly host-granular,
// since broad region alarms are operationally rare — and note alarms 2%)
// keeps the per-event satisfied-constraint count small at the median, as
// a production alarm population does.
func (a *Alerts) Subscription() *filter.Filter {
	f := &filter.Filter{Class: "Alert"}
	u := a.rng.Float64()
	switch {
	case u < 0.50:
		f.Constraints = append(f.Constraints,
			filter.C("metric", filter.OpEq, event.String(metricName(a.metricZ.Draw(a.rng)))),
			filter.C("value", filter.OpGe, event.Float(a.ceiling())))
	case u < 0.70:
		f.Constraints = append(f.Constraints,
			filter.C("metric", filter.OpEq, event.String(metricName(a.metricZ.Draw(a.rng)))),
			filter.C("value", filter.OpLe, event.Float(a.floor())))
	case u < 0.98:
		region := a.rng.IntN(a.cfg.Regions)
		zone := a.rng.IntN(a.cfg.Zones)
		host := a.rng.IntN(a.cfg.Hosts)
		full := a.topic(region, zone, host)
		var prefix string
		switch w := a.rng.Float64(); {
		case w < 0.001:
			prefix = full[:6] // m/rXX/ — a whole region
		case w < 0.037:
			prefix = full[:10] // m/rXX/zYY/ — one zone
		default:
			prefix = full // one host
		}
		f.Constraints = append(f.Constraints,
			filter.C("topic", filter.OpPrefix, event.String(prefix)),
			filter.C("value", filter.OpGe, event.Float(a.ceiling())))
	case u < 0.995:
		f.Constraints = append(f.Constraints,
			filter.C("note", filter.OpExists, event.Value{}),
			filter.C("value", filter.OpGe, event.Float(a.ceiling())))
	default:
		note := alertNotes[a.rng.IntN(len(alertNotes))]
		half := note[:len(note)/2]
		f.Constraints = append(f.Constraints,
			filter.C("note", filter.OpContains, event.String(half)),
			filter.C("value", filter.OpGe, event.Float(a.ceiling())))
	}
	return f
}
