package workload

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/typing"
)

// TickClass is the event class of the cluster scenario workload.
const TickClass = "Tick"

// OpKind identifies one operation in a cluster op stream.
type OpKind uint8

const (
	// OpSubscribe installs a new subscription for a client.
	OpSubscribe OpKind = iota
	// OpUnsubscribe removes a previously installed subscription.
	OpUnsubscribe
	// OpPublish publishes one event.
	OpPublish
)

// String returns the op-kind name.
func (k OpKind) String() string {
	switch k {
	case OpSubscribe:
		return "sub"
	case OpUnsubscribe:
		return "unsub"
	default:
		return "pub"
	}
}

// Op is one timestamped operation of a cluster scenario: who does what,
// when, on the virtual clock.
type Op struct {
	// Time is the operation's virtual timestamp in microseconds.
	Time int64
	// Kind says what the client does.
	Kind OpKind
	// Client identifies the acting client in [0, ClusterConfig.Clients).
	// The identity space can be a million clients wide; memory scales
	// with emitted ops and live subscriptions, never with Clients.
	Client uint64
	// SubID names the subscription (OpSubscribe/OpUnsubscribe).
	SubID string
	// Filter is the subscription filter (OpSubscribe only).
	Filter *filter.Filter
	// Event is the published event (OpPublish only).
	Event *event.Event
}

// Window is a time interval during which a scheduled disturbance (flash
// crowd, churn storm) is active — exported so fault schedules can be
// correlated with workload surges.
type Window struct {
	// Start and End bound the window on the virtual clock (microseconds).
	Start, End int64
	// Topic is the hot topic rank for flash crowds (-1 for churn storms).
	Topic int
}

// ClusterConfig parameterizes a cluster scenario: a heavy-tailed
// population of clients subscribing to Zipf-skewed topics and publishing
// integer-valued tick events, with optional flash crowds and churn
// storms layered on the steady state.
//
// All generated attribute values are integers or pool strings — never
// fresh floats — so traces hash identically on every platform.
type ClusterConfig struct {
	// Clients is the client identity space (up to millions).
	Clients int
	// Topics is the topic pool size; TopicSkew the Zipf exponent over it
	// (<= 1 uniform).
	Topics    int
	TopicSkew float64
	// ValueRange bounds the integer "value" attribute: draws are uniform
	// in [0, ValueRange).
	ValueRange int64
	// Subs is the number of warmup subscriptions installed before
	// publishing starts.
	Subs int
	// ValueBoundProb is the probability a subscription constrains value
	// ("value < k") in addition to its topic equality.
	ValueBoundProb float64
	// Publishes is the steady-state publish count (crowd publishes are
	// extra).
	Publishes int
	// ChurnOps sprinkles this many unsubscribe+resubscribe pairs through
	// the steady state — background subscription churn.
	ChurnOps int
	// FlashCrowds schedules this many surge windows: CrowdSubs clients
	// stampede onto one hot topic, then CrowdPubs events burst on it.
	FlashCrowds, CrowdSubs, CrowdPubs int
	// ChurnStorms schedules this many windows in which StormSize
	// subscriptions are torn down and immediately replaced — correlated
	// churn, not background noise.
	ChurnStorms, StormSize int
	// SubGap, PubGap space warmup subscriptions and steady publishes on
	// the virtual clock (microseconds; defaults 100 and 50).
	SubGap, PubGap int64
}

// DefaultCluster returns a small but fully featured scenario
// configuration: every disturbance kind present, sized to simulate in
// well under a second.
func DefaultCluster(clients int) ClusterConfig {
	return ClusterConfig{
		Clients:        clients,
		Topics:         64,
		TopicSkew:      1.4,
		ValueRange:     1000,
		Subs:           200,
		ValueBoundProb: 0.3,
		Publishes:      2000,
		ChurnOps:       100,
		FlashCrowds:    2,
		CrowdSubs:      50,
		CrowdPubs:      200,
		ChurnStorms:    1,
		StormSize:      60,
	}
}

// slotKind orders op generation; slots carry scheduling only — random
// content (clients, topics, values) is drawn when the slot is emitted,
// in emission order, so the stream is a pure function of (config, seed).
type slotKind uint8

const (
	slotSub slotKind = iota
	slotUnsub
	slotResub
	slotPub
	slotCrowdSub
	slotCrowdPub
	slotStormUnsub
	slotStormResub
)

type slot struct {
	time  int64
	kind  slotKind
	crowd int // crowd/storm index for hot-topic slots
}

type activeSub struct {
	id     string
	client uint64
}

// Cluster streams the op sequence of one cluster scenario. It is
// deterministic for a given (config, seed) and not safe for concurrent
// use. Construction cost is O(total ops) slots; filters and events are
// built lazily per emitted op.
type Cluster struct {
	cfg    ClusterConfig
	rng    *rand.Rand
	topics *Zipf
	pool   []event.Value // topic value pool
	slots  []slot
	pos    int
	crowds []Window
	storms []Window
	active []activeSub
	subSeq uint64
	evSeq  uint64
}

// NewCluster builds the scenario op stream for cfg.
func NewCluster(seed uint64, cfg ClusterConfig) (*Cluster, error) {
	if cfg.Clients <= 0 || cfg.Topics <= 0 {
		return nil, fmt.Errorf("workload: cluster needs Clients and Topics > 0: %+v", cfg)
	}
	if cfg.ValueRange <= 0 {
		cfg.ValueRange = 1000
	}
	if cfg.SubGap <= 0 {
		cfg.SubGap = 100
	}
	if cfg.PubGap <= 0 {
		cfg.PubGap = 50
	}
	c := &Cluster{
		cfg:    cfg,
		rng:    rand.New(rand.NewPCG(seed, seed^0x5bf03635)),
		topics: NewZipf(cfg.Topics, cfg.TopicSkew),
		pool:   strPool("topic-%04d", cfg.Topics),
	}
	c.schedule()
	return c, nil
}

// schedule lays out every slot on the virtual clock. Warmup
// subscriptions come first; the steady phase interleaves publishes with
// background churn; crowd and storm windows are carved out of the steady
// phase at deterministic fractions. Hot topics are drawn here, before
// any content draws, so window placement never perturbs content RNG.
func (c *Cluster) schedule() {
	cfg := c.cfg
	for i := 0; i < cfg.Subs; i++ {
		c.slots = append(c.slots, slot{time: int64(i) * cfg.SubGap, kind: slotSub})
	}
	warmup := int64(cfg.Subs)*cfg.SubGap + cfg.SubGap
	steady := int64(cfg.Publishes) * cfg.PubGap
	for i := 0; i < cfg.Publishes; i++ {
		c.slots = append(c.slots, slot{time: warmup + int64(i)*cfg.PubGap, kind: slotPub})
	}
	for j := 0; j < cfg.ChurnOps; j++ {
		// Spread churn pairs evenly; +1/+2 offsets order them after the
		// publish sharing the slot time.
		t := warmup + int64(j+1)*steady/int64(cfg.ChurnOps+1)
		c.slots = append(c.slots,
			slot{time: t + 1, kind: slotUnsub},
			slot{time: t + 2, kind: slotResub})
	}
	for w := 0; w < cfg.FlashCrowds; w++ {
		// Window w centered at fraction (w+1)/(crowds+1) of the steady phase.
		start := warmup + int64(w+1)*steady/int64(cfg.FlashCrowds+1)
		t := start
		for i := 0; i < cfg.CrowdSubs; i++ {
			c.slots = append(c.slots, slot{time: t, kind: slotCrowdSub, crowd: w})
			t += 2
		}
		for i := 0; i < cfg.CrowdPubs; i++ {
			c.slots = append(c.slots, slot{time: t, kind: slotCrowdPub, crowd: w})
			t += 2
		}
		c.crowds = append(c.crowds, Window{Start: start, End: t, Topic: c.topics.Draw(c.rng)})
	}
	for s := 0; s < cfg.ChurnStorms; s++ {
		// Storms sit at odd thirds so they don't coincide with crowds.
		start := warmup + int64(2*s+1)*steady/int64(2*cfg.ChurnStorms+1) + 5
		t := start
		for i := 0; i < cfg.StormSize; i++ {
			c.slots = append(c.slots, slot{time: t, kind: slotStormUnsub, crowd: s})
			t++
		}
		for i := 0; i < cfg.StormSize; i++ {
			c.slots = append(c.slots, slot{time: t, kind: slotStormResub, crowd: s})
			t++
		}
		c.storms = append(c.storms, Window{Start: start, End: t, Topic: -1})
	}
	// Order by (time, creation sequence) — a total key, so the sort
	// result is unique regardless of algorithm stability.
	type keyed struct {
		s   slot
		seq int
	}
	ordered := make([]keyed, len(c.slots))
	for i, s := range c.slots {
		ordered[i] = keyed{s: s, seq: i}
	}
	sort.Slice(ordered, func(a, b int) bool {
		if ordered[a].s.time != ordered[b].s.time {
			return ordered[a].s.time < ordered[b].s.time
		}
		return ordered[a].seq < ordered[b].seq
	})
	for i, k := range ordered {
		c.slots[i] = k.s
	}
}

// Advertisement returns the Tick class advertisement with the given
// stage count under the canonical association: stage 0 keeps both
// attributes, stage 1 drops "value" (brokers match on topic alone and
// the subscriber edge re-applies value bounds), the top stage keeps only
// the class.
func (c *Cluster) Advertisement(stages int) (*typing.Advertisement, error) {
	return typing.NewAdvertisement(TickClass, stages, "topic", "value")
}

// Crowds returns the flash-crowd windows (hot topic per window), and
// Storms the churn-storm windows — the hooks for correlating fault
// schedules with workload surges.
func (c *Cluster) Crowds() []Window { return c.crowds }

// Storms returns the churn-storm windows.
func (c *Cluster) Storms() []Window { return c.storms }

// Ops returns the total number of operations the stream will emit.
func (c *Cluster) Ops() int { return len(c.slots) }

// ActiveSubs returns the number of currently live subscriptions at the
// stream position.
func (c *Cluster) ActiveSubs() int { return len(c.active) }

// Next emits the next operation, or ok=false at the end of the stream.
func (c *Cluster) Next() (Op, bool) {
	for c.pos < len(c.slots) {
		s := c.slots[c.pos]
		c.pos++
		switch s.kind {
		case slotSub:
			return c.subscribe(s.time, c.topics.Draw(c.rng)), true
		case slotCrowdSub:
			return c.subscribe(s.time, c.crowds[s.crowd].Topic), true
		case slotPub:
			return c.publish(s.time, c.topics.Draw(c.rng)), true
		case slotCrowdPub:
			return c.publish(s.time, c.crowds[s.crowd].Topic), true
		case slotUnsub, slotStormUnsub:
			if len(c.active) == 0 {
				continue // nothing to churn yet; skip the slot
			}
			return c.unsubscribe(s.time), true
		case slotResub, slotStormResub:
			return c.subscribe(s.time, c.topics.Draw(c.rng)), true
		}
	}
	return Op{}, false
}

// subscribe creates a subscription op on the given topic rank.
func (c *Cluster) subscribe(t int64, topic int) Op {
	client := c.rng.Uint64N(uint64(c.cfg.Clients))
	c.subSeq++
	id := fmt.Sprintf("c%d-s%d", client, c.subSeq)
	f := &filter.Filter{Class: TickClass, Constraints: []filter.Constraint{
		filter.C("topic", filter.OpEq, c.pool[topic]),
	}}
	if c.cfg.ValueBoundProb > 0 && c.rng.Float64() < c.cfg.ValueBoundProb {
		bound := 1 + c.rng.Int64N(c.cfg.ValueRange)
		f.Constraints = append(f.Constraints, filter.C("value", filter.OpLt, event.Int(bound)))
	}
	c.active = append(c.active, activeSub{id: id, client: client})
	return Op{Time: t, Kind: OpSubscribe, Client: client, SubID: id, Filter: f}
}

// unsubscribe removes a uniformly chosen live subscription.
func (c *Cluster) unsubscribe(t int64) Op {
	i := c.rng.IntN(len(c.active))
	sub := c.active[i]
	c.active[i] = c.active[len(c.active)-1]
	c.active = c.active[:len(c.active)-1]
	return Op{Time: t, Kind: OpUnsubscribe, Client: sub.client, SubID: sub.id}
}

// publish creates a publish op on the given topic rank.
func (c *Cluster) publish(t int64, topic int) Op {
	client := c.rng.Uint64N(uint64(c.cfg.Clients))
	c.evSeq++
	e := event.NewBuilder(TickClass).
		Val("topic", c.pool[topic]).
		Int("value", c.rng.Int64N(c.cfg.ValueRange)).
		ID(c.evSeq).Build()
	return Op{Time: t, Kind: OpPublish, Client: client, Event: e}
}
