// Package workload generates the synthetic event and subscription
// populations of the paper's evaluation (Section 5.2: bibliographic data
// with attributes year, conference, author, title) and the stock and
// auction domains of the worked examples (Sections 3–4).
//
// The paper describes its populations only as "pseudo randomly generated
// dummy" sets; the generators here are seeded and fully parameterized so
// every experiment in EXPERIMENTS.md is reproducible bit-for-bit.
package workload

import (
	"fmt"
	"math/rand/v2"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/typing"
)

// AttrSpec describes one generated attribute. Exactly one of Values or
// the continuous range [Min, Max) must be set (Values == nil selects the
// continuous form, which draws float64 values).
type AttrSpec struct {
	// Name is the attribute name.
	Name string
	// Values is the finite value pool for discrete attributes.
	Values []event.Value
	// Min, Max bound continuous attributes (Values == nil).
	Min, Max float64
	// Skew selects a Zipf-like popularity skew over Values: 0 or 1 means
	// uniform; larger values concentrate draws on early pool entries.
	Skew float64
}

func (s AttrSpec) discrete() bool { return s.Values != nil }

// Generator produces events and subscriptions for one event class. It is
// deterministic for a given seed and not safe for concurrent use.
type Generator struct {
	class string
	specs []AttrSpec
	rng   *rand.Rand
	zipfs []*Zipf // per-spec samplers for skewed draws (nil = uniform)
	seq   uint64
}

// New constructs a generator for the class with the given attribute
// specs, ordered most general first (the order becomes the advertised
// generality order).
func New(class string, seed uint64, specs ...AttrSpec) (*Generator, error) {
	if class == "" {
		return nil, fmt.Errorf("workload: class required")
	}
	g := &Generator{
		class: class,
		specs: append([]AttrSpec(nil), specs...),
		rng:   rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		zipfs: make([]*Zipf, len(specs)),
	}
	for i, s := range specs {
		if s.Name == "" {
			return nil, fmt.Errorf("workload: attribute %d of %q unnamed", i, class)
		}
		if !s.discrete() {
			if !(s.Min < s.Max) {
				return nil, fmt.Errorf("workload: attribute %q needs Min < Max", s.Name)
			}
			continue
		}
		if len(s.Values) == 0 {
			return nil, fmt.Errorf("workload: attribute %q has an empty pool", s.Name)
		}
		if s.Skew > 1 {
			g.zipfs[i] = NewZipf(len(s.Values), s.Skew)
		}
	}
	return g, nil
}

// MustNew is New for presets and tests; it panics on error.
func MustNew(class string, seed uint64, specs ...AttrSpec) *Generator {
	g, err := New(class, seed, specs...)
	if err != nil {
		panic(err)
	}
	return g
}

// Class returns the generated event class.
func (g *Generator) Class() string { return g.class }

// AttrNames returns the attribute names in generality order.
func (g *Generator) AttrNames() []string {
	names := make([]string, len(g.specs))
	for i, s := range g.specs {
		names[i] = s.Name
	}
	return names
}

// Advertisement builds the class advertisement for a hierarchy with the
// given number of stages, using the canonical drop-one-per-stage
// association. Use WithStageAttrs on the result for custom associations.
func (g *Generator) Advertisement(stages int) (*typing.Advertisement, error) {
	return typing.NewAdvertisement(g.class, stages, g.AttrNames()...)
}

// drawIndex picks a pool index for spec i, honoring skew.
func (g *Generator) drawIndex(i int) int {
	if z := g.zipfs[i]; z != nil {
		return z.Draw(g.rng)
	}
	return g.rng.IntN(len(g.specs[i].Values))
}

// drawValue samples a value for spec i.
func (g *Generator) drawValue(i int) event.Value {
	s := g.specs[i]
	if s.discrete() {
		return s.Values[g.drawIndex(i)]
	}
	return event.Float(s.Min + g.rng.Float64()*(s.Max-s.Min))
}

// Event generates the next event: one value per attribute, a fresh
// sequence ID.
func (g *Generator) Event() *event.Event {
	b := event.NewBuilder(g.class)
	for i, s := range g.specs {
		b.Val(s.Name, g.drawValue(i))
	}
	g.seq++
	return b.ID(g.seq).Build()
}

// SubscriptionOptions tune generated subscriptions.
type SubscriptionOptions struct {
	// WildcardProb is the probability that an attribute is left
	// unspecified (a wildcard attribute filter, Section 4.4).
	WildcardProb float64
	// FromEvent, when non-nil, anchors equality constraints to this
	// event's values, producing subscriptions correlated with traffic.
	FromEvent *event.Event
}

// Subscription generates a stage-0 subscription filter in the evaluation
// shape: equality constraints on discrete attributes and an upper bound
// on continuous attributes.
func (g *Generator) Subscription(opts SubscriptionOptions) *filter.Filter {
	f := &filter.Filter{Class: g.class}
	for i, s := range g.specs {
		if opts.WildcardProb > 0 && g.rng.Float64() < opts.WildcardProb {
			continue
		}
		if s.discrete() {
			v := g.drawValueAnchored(i, opts.FromEvent)
			f.Constraints = append(f.Constraints, filter.C(s.Name, filter.OpEq, v))
			continue
		}
		// Continuous: subscribe to a prefix of the range (price < t),
		// anchored above the event's value when correlated.
		t := s.Min + g.rng.Float64()*(s.Max-s.Min)
		if opts.FromEvent != nil {
			if v, ok := opts.FromEvent.Lookup(s.Name); ok && v.IsNumeric() {
				t = v.Num() + g.rng.Float64()*(s.Max-v.Num())
			}
		}
		f.Constraints = append(f.Constraints, filter.C(s.Name, filter.OpLt, event.Float(t)))
	}
	return f
}

func (g *Generator) drawValueAnchored(i int, anchor *event.Event) event.Value {
	if anchor != nil {
		if v, ok := anchor.Lookup(g.specs[i].Name); ok {
			return v
		}
	}
	return g.drawValue(i)
}

// strPool builds a pool of formatted string values.
func strPool(format string, n int) []event.Value {
	out := make([]event.Value, n)
	for i := range out {
		out[i] = event.String(fmt.Sprintf(format, i))
	}
	return out
}

// intPool builds a pool of consecutive integer values starting at base.
func intPool(base, n int) []event.Value {
	out := make([]event.Value, n)
	for i := range out {
		out[i] = event.Int(int64(base + i))
	}
	return out
}
