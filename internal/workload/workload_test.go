package workload

import (
	"math"
	"testing"

	"eventsys/internal/event"
	"eventsys/internal/filter"
)

func TestGeneratorDeterminism(t *testing.T) {
	mk := func() *Generator {
		return MustNew("T", 42,
			AttrSpec{Name: "a", Values: intPool(0, 10)},
			AttrSpec{Name: "b", Min: 0, Max: 1},
		)
	}
	g1, g2 := mk(), mk()
	for i := 0; i < 50; i++ {
		e1, e2 := g1.Event(), g2.Event()
		if !e1.Equal(e2) || e1.ID != e2.ID {
			t.Fatalf("iteration %d: generators diverged: %s vs %s", i, e1, e2)
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := New("", 1); err == nil {
		t.Error("empty class should fail")
	}
	if _, err := New("T", 1, AttrSpec{Name: ""}); err == nil {
		t.Error("unnamed attribute should fail")
	}
	if _, err := New("T", 1, AttrSpec{Name: "a"}); err == nil {
		t.Error("empty pool and empty range should fail")
	}
	if _, err := New("T", 1, AttrSpec{Name: "a", Min: 5, Max: 5}); err == nil {
		t.Error("empty range should fail")
	}
	if _, err := New("T", 1, AttrSpec{Name: "a", Values: intPool(0, 3)}); err != nil {
		t.Errorf("valid spec failed: %v", err)
	}
}

func TestEventShape(t *testing.T) {
	g := MustNew("Stock", 7,
		AttrSpec{Name: "symbol", Values: strPool("S%d", 5)},
		AttrSpec{Name: "price", Min: 1, Max: 10},
	)
	for i := 0; i < 100; i++ {
		e := g.Event()
		if e.Type != "Stock" {
			t.Fatalf("type = %q", e.Type)
		}
		if e.ID != uint64(i+1) {
			t.Fatalf("ID = %d, want %d", e.ID, i+1)
		}
		p, ok := e.Lookup("price")
		if !ok || p.Num() < 1 || p.Num() >= 10 {
			t.Fatalf("price out of range: %v", p)
		}
		if s, ok := e.Lookup("symbol"); !ok || s.Kind() != event.KindString {
			t.Fatalf("symbol = %v", s)
		}
	}
}

func TestSkewConcentrates(t *testing.T) {
	uniform := MustNew("T", 3, AttrSpec{Name: "a", Values: intPool(0, 100)})
	skewed := MustNew("T", 3, AttrSpec{Name: "a", Values: intPool(0, 100), Skew: 2})
	countTop := func(g *Generator) int {
		top := 0
		for i := 0; i < 2000; i++ {
			v, _ := g.Event().Lookup("a")
			if v.IntVal() < 5 {
				top++
			}
		}
		return top
	}
	u, s := countTop(uniform), countTop(skewed)
	if s <= u*3 {
		t.Errorf("skewed draws not concentrated: top-5 uniform=%d skewed=%d", u, s)
	}
}

func TestSubscriptionShape(t *testing.T) {
	g := MustNew("Stock", 7,
		AttrSpec{Name: "symbol", Values: strPool("S%d", 5)},
		AttrSpec{Name: "price", Min: 1, Max: 10},
	)
	f := g.Subscription(SubscriptionOptions{})
	if f.Class != "Stock" || len(f.Constraints) != 2 {
		t.Fatalf("subscription = %s", f)
	}
	if f.Constraints[0].Op != filter.OpEq {
		t.Errorf("discrete attr op = %v, want =", f.Constraints[0].Op)
	}
	if f.Constraints[1].Op != filter.OpLt {
		t.Errorf("continuous attr op = %v, want <", f.Constraints[1].Op)
	}
}

func TestSubscriptionAnchoredMatchesAnchor(t *testing.T) {
	g := MustNew("Stock", 7,
		AttrSpec{Name: "symbol", Values: strPool("S%d", 5)},
		AttrSpec{Name: "price", Min: 1, Max: 10},
	)
	for i := 0; i < 100; i++ {
		e := g.Event()
		f := g.Subscription(SubscriptionOptions{FromEvent: e})
		if !f.Matches(e, nil) {
			t.Fatalf("anchored subscription %s does not match its anchor %s", f, e)
		}
	}
}

func TestSubscriptionWildcards(t *testing.T) {
	g := MustNew("T", 9,
		AttrSpec{Name: "a", Values: intPool(0, 3)},
		AttrSpec{Name: "b", Values: intPool(0, 3)},
	)
	sawWild, sawFull := false, false
	for i := 0; i < 200; i++ {
		f := g.Subscription(SubscriptionOptions{WildcardProb: 0.5})
		switch len(f.Constraints) {
		case 2:
			sawFull = true
		case 0, 1:
			sawWild = true
		}
	}
	if !sawWild || !sawFull {
		t.Errorf("wildcard mix missing: wild=%v full=%v", sawWild, sawFull)
	}
	f := g.Subscription(SubscriptionOptions{WildcardProb: 0})
	if len(f.Constraints) != 2 {
		t.Errorf("prob 0 dropped constraints: %s", f)
	}
}

func TestAdvertisement(t *testing.T) {
	g := MustNew("T", 1,
		AttrSpec{Name: "a", Values: intPool(0, 2)},
		AttrSpec{Name: "b", Values: intPool(0, 5)},
	)
	ad, err := g.Advertisement(3)
	if err != nil {
		t.Fatal(err)
	}
	if ad.Class != "T" || len(ad.Attrs) != 2 {
		t.Fatalf("advert = %+v", ad)
	}
}

func TestBiblioTitleCorrelation(t *testing.T) {
	b, err := NewBiblio(5, DefaultBiblio())
	if err != nil {
		t.Fatal(err)
	}
	// Titles must be a function of (year, conference, author) modulo the
	// variant index: the same combination yields at most 2 titles.
	titles := make(map[string]map[string]bool)
	for i := 0; i < 5000; i++ {
		e := b.Event()
		y, _ := e.Lookup("year")
		c, _ := e.Lookup("conference")
		a, _ := e.Lookup("author")
		key := y.String() + c.String() + a.String()
		tl, _ := e.Lookup("title")
		if titles[key] == nil {
			titles[key] = make(map[string]bool)
		}
		titles[key][tl.Str()] = true
		if len(titles[key]) > 2 {
			t.Fatalf("combination %s has %d titles", key, len(titles[key]))
		}
	}
}

func TestBiblioSubscriptionMatchesTraffic(t *testing.T) {
	b, err := NewBiblio(6, DefaultBiblio())
	if err != nil {
		t.Fatal(err)
	}
	f := b.Subscription(0, true)
	if len(f.Constraints) != 4 {
		t.Fatalf("subscription = %s", f)
	}
	// An anchored subscription matches some traffic within a bounded
	// number of events (the title is correlated, not arbitrary).
	matched := false
	for i := 0; i < 200000 && !matched; i++ {
		if f.Matches(b.Event(), nil) {
			matched = true
		}
	}
	if !matched {
		t.Errorf("anchored subscription %s never matched traffic", f)
	}
}

func TestBiblioValidation(t *testing.T) {
	if _, err := NewBiblio(1, BiblioConfig{Years: 0, Conferences: 1, Authors: 1, TitleVariants: 1}); err == nil {
		t.Error("zero pool should fail")
	}
	if _, err := NewBiblio(1, BiblioConfig{Years: 1, Conferences: 1, Authors: 1, TitleVariants: 0.5}); err == nil {
		t.Error("TitleVariants < 1 should fail")
	}
}

func TestBiblioVariantCalibration(t *testing.T) {
	// With TitleVariants = 1.3 the share of single-variant combinations
	// is 0.7, so a subscriber pinned to one title sees roughly
	// 0.7 + 0.3/2 ≈ 0.85 of the events for its combination.
	b, err := NewBiblio(8, DefaultBiblio())
	if err != nil {
		t.Fatal(err)
	}
	single, total := 0, 0
	seen := make(map[string]map[string]bool)
	for i := 0; i < 20000; i++ {
		e := b.Event()
		y, _ := e.Lookup("year")
		c, _ := e.Lookup("conference")
		a, _ := e.Lookup("author")
		tl, _ := e.Lookup("title")
		key := y.String() + c.String() + a.String()
		if seen[key] == nil {
			seen[key] = make(map[string]bool)
		}
		seen[key][tl.Str()] = true
	}
	for _, variants := range seen {
		total++
		if len(variants) == 1 {
			single++
		}
	}
	frac := float64(single) / float64(total)
	// Combinations observed many times expose their second variant with
	// high probability; accept a broad band around the configured mix.
	if math.Abs(frac-0.7) > 0.15 {
		t.Errorf("single-variant fraction = %.2f, want ≈ 0.7", frac)
	}
}

func TestStocksAndAuctionsPresets(t *testing.T) {
	s, err := NewStocks(3, DefaultStocks())
	if err != nil {
		t.Fatal(err)
	}
	if e := s.Event(); e.Type != "Stock" || len(e.Attrs) != 2 {
		t.Errorf("stock event = %s", e)
	}
	if _, err := NewStocks(3, StocksConfig{}); err == nil {
		t.Error("zero symbols should fail")
	}
	a, err := NewAuctions(4)
	if err != nil {
		t.Fatal(err)
	}
	if e := a.Event(); e.Type != "Auction" || len(e.Attrs) != 4 {
		t.Errorf("auction event = %s", e)
	}
}
