package workload

import (
	"strings"
	"testing"

	"eventsys/internal/filter"
)

func TestAlertsDeterminism(t *testing.T) {
	a1, err := NewAlerts(5, DefaultAlerts())
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := NewAlerts(5, DefaultAlerts())
	for i := 0; i < 200; i++ {
		if e1, e2 := a1.Event(), a2.Event(); e1.String() != e2.String() {
			t.Fatalf("event %d diverged:\n %s\n %s", i, e1, e2)
		}
		if f1, f2 := a1.Subscription(), a2.Subscription(); f1.Key() != f2.Key() {
			t.Fatalf("subscription %d diverged:\n %s\n %s", i, f1, f2)
		}
	}
}

func TestAlertsShape(t *testing.T) {
	a, err := NewAlerts(9, DefaultAlerts())
	if err != nil {
		t.Fatal(err)
	}
	// Region-granular topic alarms are deliberately rare (~0.03% of
	// subscriptions), so observing all three prefix lengths needs a
	// large (seeded, deterministic) draw.
	prefixLens := map[int]bool{}
	for i := 0; i < 30000; i++ {
		f := a.Subscription()
		if f.Class != "Alert" || len(f.Constraints) != 2 {
			t.Fatalf("subscription shape: %s", f)
		}
		var hasThreshold bool
		for _, c := range f.Constraints {
			switch c.Op {
			case filter.OpGe, filter.OpLe:
				v := c.Operand.Num()
				if !(v >= 0 && v < 100) {
					t.Fatalf("threshold %v outside value range", v)
				}
				if v >= 1.05 && v <= 98.95 {
					t.Fatalf("threshold %v outside the alarm bands", v)
				}
				hasThreshold = true
			case filter.OpPrefix:
				prefixLens[len(c.Operand.Str())] = true
			}
		}
		if !hasThreshold {
			t.Fatalf("subscription without threshold: %s", f)
		}
	}
	if len(prefixLens) != 3 {
		t.Fatalf("prefix operand lengths = %v, want region/zone/host (3)", prefixLens)
	}

	notes := 0
	for i := 0; i < 5000; i++ {
		e := a.Event()
		topic, _ := e.Lookup("topic")
		if !strings.HasPrefix(topic.Str(), "m/r") || len(topic.Str()) != 14 {
			t.Fatalf("topic %q not fixed-width hierarchical", topic.Str())
		}
		if _, ok := e.Lookup("note"); ok {
			notes++
		}
	}
	if notes == 0 || notes > 250 {
		t.Fatalf("notes on %d/5000 events, want sparse but nonzero", notes)
	}
}

func TestAlertsConfigValidation(t *testing.T) {
	if _, err := NewAlerts(1, AlertsConfig{}); err == nil {
		t.Error("zero config should fail")
	}
	bad := DefaultAlerts()
	bad.Levels = 4000
	if _, err := NewAlerts(1, bad); err == nil {
		t.Error("Levels beyond the band should fail")
	}
}

func TestAlertsMatchRateIsSparse(t *testing.T) {
	// Shrunk pools: at the default 20k-metric/100k-host scale, a 2000x2000
	// population has well under one expected match in total.
	a, err := NewAlerts(13, AlertsConfig{Metrics: 50, Regions: 2, Zones: 2, Hosts: 5, Levels: 40, Skew: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	subs := make([]*filter.Filter, 2000)
	for i := range subs {
		subs[i] = a.Subscription()
	}
	matchedEvents, hits := 0, 0
	const events = 2000
	for i := 0; i < events; i++ {
		e := a.Event()
		n := 0
		for _, f := range subs {
			if f.Matches(e, nil) {
				n++
			}
		}
		hits += n
		if n > 0 {
			matchedEvents++
		}
	}
	// Alarms are rare by construction: a small fraction of events fire
	// any alarm at all, and the average satisfied-filter count stays
	// far below the population size.
	if matchedEvents == 0 {
		t.Error("no event fired any alarm; thresholds degenerate")
	}
	if frac := float64(matchedEvents) / events; frac > 0.25 {
		t.Errorf("%.0f%% of events fire alarms; workload not sparse", frac*100)
	}
	if avg := float64(hits) / events; avg > float64(len(subs))/100 {
		t.Errorf("average %.1f matches/event over %d subs; too dense", avg, len(subs))
	}
}
