package workload

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"testing"
)

// TestZipfRankFrequencyShape checks the sampler actually produces the
// configured power law: frequencies decrease with rank and the head/tail
// ratio is in the band the exponent predicts.
func TestZipfRankFrequencyShape(t *testing.T) {
	const n, s, draws = 50, 1.4, 200000
	z := NewZipf(n, s)
	rng := rand.New(rand.NewPCG(42, 43))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Draw(rng)]++
	}
	// Coarse monotonicity: averaged over rank bands to tolerate noise.
	band := func(lo, hi int) float64 {
		total := 0
		for i := lo; i < hi; i++ {
			total += counts[i]
		}
		return float64(total) / float64(hi-lo)
	}
	if !(band(0, 5) > band(5, 15) && band(5, 15) > band(15, 50)) {
		t.Fatalf("rank-frequency not decreasing: bands %.0f %.0f %.0f",
			band(0, 5), band(5, 15), band(15, 50))
	}
	// p(rank 1)/p(rank 10) = 10^s ≈ 25 for s=1.4; accept a wide band.
	ratio := float64(counts[0]) / float64(counts[9])
	if ratio < 10 || ratio > 60 {
		t.Fatalf("head/tail ratio %.1f outside [10, 60] for s=%v", ratio, s)
	}
	// Uniform sampler (s <= 1) spreads evenly.
	u := NewZipf(n, 1.0)
	counts = make([]int, n)
	for i := 0; i < draws; i++ {
		counts[u.Draw(rng)]++
	}
	if r := float64(counts[0]) / float64(counts[n-1]); r > 1.3 || r < 0.7 {
		t.Fatalf("uniform sampler skewed: first/last ratio %.2f", r)
	}
}

// TestAnchoredSubscriptionsMatchEvents pins the anchoring property: a
// subscription generated FromEvent always matches its anchor.
func TestAnchoredSubscriptionsMatchEvents(t *testing.T) {
	g := MustNew("Stock", 7,
		AttrSpec{Name: "symbol", Values: strPool("SYM%02d", 20), Skew: 1.3},
		AttrSpec{Name: "price", Min: 1, Max: 100},
	)
	for i := 0; i < 500; i++ {
		e := g.Event()
		f := g.Subscription(SubscriptionOptions{FromEvent: e})
		if !f.Matches(e, nil) {
			t.Fatalf("anchored subscription %s does not match its anchor %s", f, e)
		}
	}
	// Biblio's derived-title anchoring must hold too.
	b, err := NewBiblio(11, DefaultBiblio())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		e := b.Event()
		f := b.Generator().Subscription(SubscriptionOptions{FromEvent: e})
		if !f.Matches(e, nil) {
			t.Fatalf("anchored biblio subscription %s does not match %s", f, e)
		}
	}
}

// renderOp flattens an op to a comparable string, including full filter
// and event content.
func renderOp(op Op) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d %s c%d %s", op.Time, op.Kind, op.Client, op.SubID)
	if op.Filter != nil {
		fmt.Fprintf(&sb, " f=%s", op.Filter)
	}
	if op.Event != nil {
		fmt.Fprintf(&sb, " e=%s", op.Event)
	}
	return sb.String()
}

// TestClusterSameSeedBitIdentical runs the same scenario twice and
// requires byte-identical op streams.
func TestClusterSameSeedBitIdentical(t *testing.T) {
	cfg := DefaultCluster(100000)
	a, err := NewCluster(99, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCluster(99, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		opA, okA := a.Next()
		opB, okB := b.Next()
		if okA != okB {
			t.Fatalf("streams diverge in length at op %d", n)
		}
		if !okA {
			break
		}
		ra, rb := renderOp(opA), renderOp(opB)
		if ra != rb {
			t.Fatalf("op %d differs:\n  %s\n  %s", n, ra, rb)
		}
		n++
	}
	if n == 0 {
		t.Fatal("empty op stream")
	}
	// A different seed must actually change the stream.
	c, _ := NewCluster(100, cfg)
	a, _ = NewCluster(99, cfg)
	same := true
	for {
		opA, okA := a.Next()
		opC, okC := c.Next()
		if !okA || !okC {
			break
		}
		if renderOp(opA) != renderOp(opC) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestClusterMillionClients drains a scenario over a million-client
// identity space: op count matches the schedule, timestamps are
// monotone, client IDs stay in range, and memory scales with live
// subscriptions rather than population (implicitly: this test completes
// in milliseconds).
func TestClusterMillionClients(t *testing.T) {
	cfg := DefaultCluster(1_000_000)
	c, err := NewCluster(5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var (
		n        int
		last     int64 = -1
		pubs     int
		subs     int
		unsubs   int
		clients  = map[uint64]bool{}
		maxAlive int
	)
	for {
		op, ok := c.Next()
		if !ok {
			break
		}
		n++
		if op.Time < last {
			t.Fatalf("timestamps not monotone: %d after %d", op.Time, last)
		}
		last = op.Time
		if op.Client >= uint64(cfg.Clients) {
			t.Fatalf("client %d outside population %d", op.Client, cfg.Clients)
		}
		clients[op.Client] = true
		switch op.Kind {
		case OpPublish:
			pubs++
			if op.Event == nil || op.Filter != nil {
				t.Fatalf("malformed publish op %+v", op)
			}
		case OpSubscribe:
			subs++
			if op.Filter == nil || op.Event != nil || op.SubID == "" {
				t.Fatalf("malformed subscribe op %+v", op)
			}
		case OpUnsubscribe:
			unsubs++
			if op.SubID == "" {
				t.Fatalf("malformed unsubscribe op %+v", op)
			}
		}
		if a := c.ActiveSubs(); a > maxAlive {
			maxAlive = a
		}
	}
	if n > c.Ops() {
		t.Fatalf("emitted %d ops, scheduled %d", n, c.Ops())
	}
	wantPubs := cfg.Publishes + cfg.FlashCrowds*cfg.CrowdPubs
	if pubs != wantPubs {
		t.Fatalf("publishes = %d, want %d", pubs, wantPubs)
	}
	if subs <= cfg.Subs || unsubs == 0 {
		t.Fatalf("churn missing: subs=%d unsubs=%d", subs, unsubs)
	}
	if len(clients) < 1000 {
		t.Fatalf("only %d distinct clients across %d ops", len(clients), n)
	}
	// Live subscriptions stay bounded by the schedule, not the population.
	bound := cfg.Subs + cfg.ChurnOps + cfg.FlashCrowds*cfg.CrowdSubs + cfg.ChurnStorms*cfg.StormSize
	if maxAlive > bound {
		t.Fatalf("active subs peaked at %d, schedule bound %d", maxAlive, bound)
	}
}

// TestClusterCrowdsConcentrateOnHotTopic checks flash-crowd windows
// flood their hot topic: within a window, publishes on the hot topic
// dominate.
func TestClusterCrowdsConcentrateOnHotTopic(t *testing.T) {
	cfg := DefaultCluster(10000)
	c, err := NewCluster(21, cfg)
	if err != nil {
		t.Fatal(err)
	}
	crowds := c.Crowds()
	if len(crowds) != cfg.FlashCrowds {
		t.Fatalf("crowds = %d, want %d", len(crowds), cfg.FlashCrowds)
	}
	hot := make([]int, len(crowds))
	total := make([]int, len(crowds))
	for {
		op, ok := c.Next()
		if !ok {
			break
		}
		if op.Kind != OpPublish {
			continue
		}
		topic, _ := op.Event.Lookup("topic")
		for i, w := range crowds {
			if op.Time >= w.Start && op.Time < w.End {
				total[i]++
				if topic.Str() == fmt.Sprintf("topic-%04d", w.Topic) {
					hot[i]++
				}
			}
		}
	}
	for i := range crowds {
		if total[i] == 0 || float64(hot[i])/float64(total[i]) < 0.8 {
			t.Fatalf("crowd %d: %d/%d publishes on hot topic", i, hot[i], total[i])
		}
	}
}
