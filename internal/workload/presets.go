package workload

import (
	"fmt"
	"math/rand/v2"

	"eventsys/internal/event"
	"eventsys/internal/filter"
)

// BiblioConfig parameterizes the Section 5.2 bibliographic workload.
type BiblioConfig struct {
	// Years, Conferences, Authors set the discrete pool sizes. Attribute
	// generality follows pool size: year (fewest values) is most general,
	// matching the paper's stage assignment (year survives to stage 3).
	Years, Conferences, Authors int
	// TitleVariants is the expected number of distinct titles per
	// (year, conference, author) combination. Titles are correlated with
	// the other attributes — an author publishes ~1 title per venue and
	// year — which is what gives subscribers a high matching rate. 1.3
	// calibrates the subscriber-average MR near the paper's 0.87.
	TitleVariants float64
	// Skew applies popularity skew to conferences and authors.
	Skew float64
}

// DefaultBiblio mirrors the scale implied by Section 5.2/5.3.
func DefaultBiblio() BiblioConfig {
	return BiblioConfig{Years: 5, Conferences: 10, Authors: 100, TitleVariants: 1.3, Skew: 0}
}

// Biblio is the paper's evaluation workload: events with attributes
// (year, conference, author, title), most general first.
type Biblio struct {
	cfg BiblioConfig
	gen *Generator
	rng *rand.Rand
}

// NewBiblio constructs the bibliographic workload.
func NewBiblio(seed uint64, cfg BiblioConfig) (*Biblio, error) {
	if cfg.Years <= 0 || cfg.Conferences <= 0 || cfg.Authors <= 0 {
		return nil, fmt.Errorf("workload: biblio pools must be positive: %+v", cfg)
	}
	if cfg.TitleVariants < 1 {
		return nil, fmt.Errorf("workload: TitleVariants must be >= 1, got %v", cfg.TitleVariants)
	}
	gen, err := New("Biblio", seed,
		AttrSpec{Name: "year", Values: intPool(1998, cfg.Years)},
		AttrSpec{Name: "conference", Values: strPool("Conf-%02d", cfg.Conferences), Skew: cfg.Skew},
		AttrSpec{Name: "author", Values: strPool("Author-%03d", cfg.Authors), Skew: cfg.Skew},
		// The title spec exists for schema purposes; values are derived.
		AttrSpec{Name: "title", Values: strPool("Title-%d", 1)},
	)
	if err != nil {
		return nil, err
	}
	return &Biblio{cfg: cfg, gen: gen, rng: rand.New(rand.NewPCG(seed^0xabcdef, seed))}, nil
}

// Generator exposes the underlying generator (for advertisements and
// attribute order).
func (b *Biblio) Generator() *Generator { return b.gen }

// Event draws a bibliographic event. The title is a deterministic
// function of (year, conference, author) plus a small variant index, so
// subscriptions anchored to events match future traffic.
func (b *Biblio) Event() *event.Event {
	e := b.gen.Event()
	e.Set("title", b.titleFor(e))
	return e
}

// titleFor derives the correlated title value. Whether a combination has
// one or two title variants is a deterministic property of the
// combination (hash-based), so the expected variant count holds per
// combination, not per event.
func (b *Biblio) titleFor(e *event.Event) event.Value {
	year, _ := e.Lookup("year")
	conf, _ := e.Lookup("conference")
	author, _ := e.Lookup("author")
	key := fmt.Sprintf("%d|%s|%s", year.IntVal(), conf.Str(), author.Str())
	variant := 0
	if p := b.cfg.TitleVariants - 1; p > 0 && comboHash(key) < p {
		// This combination has two variants; events split between them.
		variant = b.rng.IntN(2)
	}
	return event.String(fmt.Sprintf("%s @%s %d #%d", author.Str(), conf.Str(), year.IntVal(), variant))
}

// comboHash maps a combination key to [0, 1) deterministically (FNV-1a).
func comboHash(key string) float64 {
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return float64(h%100000) / 100000
}

// Subscription draws a stage-0 subscription. With anchor=true the filter
// is anchored to a fresh event (guaranteeing it matches real traffic),
// reproducing the paper's implicit assumption that subscriptions are
// about data that exists.
func (b *Biblio) Subscription(wildcardProb float64, anchor bool) *filter.Filter {
	var from *event.Event
	if anchor {
		from = b.Event()
	}
	f := b.gen.Subscription(SubscriptionOptions{WildcardProb: wildcardProb, FromEvent: from})
	// Re-derive the title constraint from the anchor (the generic
	// generator used the placeholder pool).
	for i, c := range f.Constraints {
		if c.Attr == "title" {
			if from != nil {
				v, _ := from.Lookup("title")
				f.Constraints[i].Operand = v
			} else {
				// Unanchored title constraints reference variant 0 of a
				// random combination.
				anchorEv := b.Event()
				anchorEv.Set("title", b.titleFor(anchorEv))
				v, _ := anchorEv.Lookup("title")
				f.Constraints[i].Operand = v
			}
		}
	}
	return f
}

// StocksConfig parameterizes the stock-quote workload of Section 3.
type StocksConfig struct {
	Symbols  int
	MinPrice float64
	MaxPrice float64
	Skew     float64
}

// DefaultStocks returns a 50-symbol market.
func DefaultStocks() StocksConfig {
	return StocksConfig{Symbols: 50, MinPrice: 1, MaxPrice: 100, Skew: 1.2}
}

// NewStocks constructs the stock workload: events (symbol, price),
// subscriptions symbol = S && price < t.
func NewStocks(seed uint64, cfg StocksConfig) (*Generator, error) {
	if cfg.Symbols <= 0 {
		return nil, fmt.Errorf("workload: need at least one symbol")
	}
	return New("Stock", seed,
		AttrSpec{Name: "symbol", Values: strPool("SYM%02d", cfg.Symbols), Skew: cfg.Skew},
		AttrSpec{Name: "price", Min: cfg.MinPrice, Max: cfg.MaxPrice},
	)
}

// NewAuctions constructs the auction workload of Section 4's Example 5:
// events (product, kind, capacity, price).
func NewAuctions(seed uint64) (*Generator, error) {
	return New("Auction", seed,
		AttrSpec{Name: "product", Values: []event.Value{
			event.String("Vehicle"), event.String("Computer"), event.String("Furniture"),
		}},
		AttrSpec{Name: "kind", Values: []event.Value{
			event.String("Car"), event.String("Truck"), event.String("Van"),
			event.String("Laptop"), event.String("Desk"),
		}},
		AttrSpec{Name: "capacity", Min: 500, Max: 5000},
		AttrSpec{Name: "price", Min: 1000, Max: 50000},
	)
}
