package workload

import (
	"math"
	"math/rand/v2"
	"sort"
)

// Zipf draws ranks 0..n-1 with probability proportional to 1/(rank+1)^s
// — the heavy-tailed popularity law behind skewed fan-out: a few hot
// topics attract most of the traffic while a long tail stays cold.
//
// rand/v2 has no Zipf generator, so this one samples by binary search
// over a precomputed cumulative weight table: O(n) memory once, O(log n)
// per draw, and — unlike rejection samplers — exactly one RNG consumption
// per draw, which keeps op streams bit-identical across runs regardless
// of how draws interleave. s <= 1 degrades to uniform. The sampler is
// stateless between draws and safe to share across callers that
// serialize access to the supplied rng.
type Zipf struct {
	cum []float64 // cum[k] = sum_{j<=k} 1/(j+1)^s; nil means uniform
	n   int
}

// NewZipf builds a sampler over n ranks with exponent s.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		n = 1
	}
	z := &Zipf{n: n}
	if s > 1 {
		z.cum = make([]float64, n)
		total := 0.0
		for k := 0; k < n; k++ {
			total += 1 / math.Pow(float64(k+1), s)
			z.cum[k] = total
		}
	}
	return z
}

// N returns the rank-space size.
func (z *Zipf) N() int { return z.n }

// Draw samples a rank in [0, N) using exactly one rng value.
func (z *Zipf) Draw(rng *rand.Rand) int {
	if z.cum == nil {
		return rng.IntN(z.n)
	}
	u := rng.Float64() * z.cum[len(z.cum)-1]
	return sort.SearchFloat64s(z.cum, u)
}
