package object

import (
	"strings"
	"testing"

	"eventsys/internal/event"
)

// Stock mirrors the paper's Section 3.4 example: private state with
// Get-prefixed access methods.
type Stock struct {
	symbol string
	price  float64
}

func NewStock(symbol string, price float64) *Stock { return &Stock{symbol: symbol, price: price} }

// GetSymbol reports the ticker symbol (paper convention accessor).
func (s *Stock) GetSymbol() string { return s.symbol }

// GetPrice reports the quote price.
func (s *Stock) GetPrice() float64 { return s.price }

// plainFields uses exported fields instead of accessors.
type plainFields struct {
	Symbol string
	Price  float64
	Volume int
	Hot    bool
	hidden string
	Fn     func() // unsupported kind: skipped
}

func TestExtractGetters(t *testing.T) {
	attrs, err := Extract(NewStock("Foo", 10.0))
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 2 {
		t.Fatalf("attrs = %v", attrs)
	}
	// Alphabetical getter order: price, symbol.
	if attrs[0].Name != "price" || !attrs[0].Value.Equal(event.Float(10)) {
		t.Errorf("attr 0 = %v", attrs[0])
	}
	if attrs[1].Name != "symbol" || !attrs[1].Value.Equal(event.String("Foo")) {
		t.Errorf("attr 1 = %v", attrs[1])
	}
}

func TestExtractFields(t *testing.T) {
	attrs, err := Extract(plainFields{Symbol: "Bar", Price: 2.5, Volume: 100, Hot: true, hidden: "x"})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]event.Value{
		"symbol": event.String("Bar"),
		"price":  event.Float(2.5),
		"volume": event.Int(100),
		"hot":    event.Bool(true),
	}
	if len(attrs) != len(want) {
		t.Fatalf("attrs = %v", attrs)
	}
	for _, a := range attrs {
		w, ok := want[a.Name]
		if !ok || !a.Value.Equal(w) {
			t.Errorf("attr %s = %v, want %v", a.Name, a.Value, w)
		}
	}
}

// getterShadows has both a field and a getter for the same attribute; the
// getter wins (encapsulation: the accessor is authoritative).
type getterShadows struct {
	Price float64
}

func (g getterShadows) GetPrice() float64 { return g.Price * 2 }

func TestGetterShadowsField(t *testing.T) {
	attrs, err := Extract(getterShadows{Price: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 1 || !attrs[0].Value.Equal(event.Float(10)) {
		t.Fatalf("attrs = %v, want getter value 10", attrs)
	}
}

// oddGetters exercises signatures that must be ignored.
type oddGetters struct{ X int }

func (oddGetters) Get() int             { return 1 } // bare "Get"
func (oddGetters) GetPair() (int, int)  { return 1, 2 }
func (oddGetters) GetWithArg(n int) int { return n }
func (oddGetters) GetSlice() []int      { return nil }
func (oddGetters) Compute() int         { return 9 } // no Get prefix

func TestExtractIgnoresOddSignatures(t *testing.T) {
	attrs, err := Extract(oddGetters{X: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 1 || attrs[0].Name != "x" {
		t.Fatalf("attrs = %v, want only field x", attrs)
	}
}

func TestExtractErrors(t *testing.T) {
	if _, err := Extract(nil); err == nil {
		t.Error("nil should fail")
	}
	var p *Stock
	if _, err := Extract(p); err == nil {
		t.Error("nil pointer should fail")
	}
	if _, err := Extract(42); err == nil {
		t.Error("non-struct should fail")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	type payload struct {
		A string
		B int
		C []float64
	}
	in := payload{A: "x", B: 3, C: []float64{1, 2}}
	raw, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode[payload](raw)
	if err != nil {
		t.Fatal(err)
	}
	if out.A != in.A || out.B != in.B || len(out.C) != 2 {
		t.Errorf("round trip = %+v", out)
	}
}

func TestDecodeError(t *testing.T) {
	if _, err := Decode[int]([]byte("garbage")); err == nil {
		t.Error("garbage payload should fail to decode")
	}
}

func TestToEvent(t *testing.T) {
	type Quote struct {
		Symbol string
		Price  float64
	}
	e, err := ToEvent("Stock", Quote{Symbol: "Foo", Price: 9}, []string{"symbol", "price"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Type != "Stock" {
		t.Errorf("type = %q", e.Type)
	}
	if names := strings.Join(e.Names(), ","); names != "symbol,price" {
		t.Errorf("names = %s", names)
	}
	if len(e.Payload) == 0 {
		t.Error("payload missing")
	}
	// The subscriber runtime can reconstruct the object.
	q, err := Decode[Quote](e.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if q.Symbol != "Foo" || q.Price != 9 {
		t.Errorf("decoded = %+v", q)
	}
}

func TestToEventOrderAppendsUnlisted(t *testing.T) {
	type V struct {
		A int
		B int
		C int
	}
	e, err := ToEvent("T", V{1, 2, 3}, []string{"c", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if names := strings.Join(e.Names(), ","); names != "c,a,b" {
		t.Errorf("names = %s", names)
	}
}

// statefulPredicate mirrors BuyFilter of Section 3.4: a stateful local
// filter that cannot be expressed declaratively and therefore runs only
// at the subscriber runtime.
type buyFilter struct {
	last      float64
	max       float64
	threshold float64
}

func (b *buyFilter) match(price float64) bool {
	if price >= b.max {
		return false
	}
	match := b.last != 0 && price <= b.last*b.threshold
	b.last = price
	return match
}

func TestStatefulLocalFilterSemantics(t *testing.T) {
	// Documents the intended division of labor: the broker-side filter
	// f1 = price < 10 pre-filters; the stateful part runs locally.
	b := &buyFilter{max: 10.0, threshold: 0.95}
	prices := []float64{9.0, 8.9, 8.0, 9.9, 8.0}
	want := []bool{false, false, true, false, true}
	for i, p := range prices {
		if got := b.match(p); got != want[i] {
			t.Errorf("match(%v) = %v, want %v", p, got, want[i])
		}
	}
}
