// Package object implements the event-safety layer of Section 3.4:
// application-defined Go types become events without giving brokers
// access to their internals.
//
// A published object is transformed into (1) meta-data — a property-set
// view extracted through reflection following the paper's access-method
// convention — used exclusively for routing, and (2) an opaque gob
// payload carrying the full object, decoded only by the subscriber
// runtime. Brokers never execute application code and never see more
// than the extracted attributes, preserving encapsulation end to end.
//
// Attribute extraction convention (the Go rendering of the paper's
// "getX" rule): an exported niladic method named GetX with a single
// supported result contributes attribute "x"; an exported field X
// contributes attribute "x" unless a getter for the same attribute
// exists. Supported kinds are strings, booleans, all integer widths, and
// floats.
package object

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"unicode"
	"unicode/utf8"

	"eventsys/internal/event"
)

// Extract derives the property-set attributes of an application object.
// Getter-derived attributes come first (alphabetically), then remaining
// exported fields in declaration order. Passing a pointer exposes both
// value- and pointer-receiver getters; a nil pointer or non-struct value
// is an error.
func Extract(v any) ([]event.Attribute, error) {
	rv := reflect.ValueOf(v)
	if !rv.IsValid() {
		return nil, fmt.Errorf("object: cannot extract attributes from nil")
	}
	if rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return nil, fmt.Errorf("object: cannot extract attributes from nil %s", rv.Type())
		}
	}
	elem := rv
	if elem.Kind() == reflect.Pointer {
		elem = elem.Elem()
	}
	if elem.Kind() != reflect.Struct {
		return nil, fmt.Errorf("object: %s is not a struct or pointer to struct", rv.Type())
	}

	var attrs []event.Attribute
	seen := make(map[string]bool)

	// Pass 1: Get*-prefixed accessor methods (the paper's convention).
	mv := rv // method set of the value as given (pointer ⇒ superset)
	mt := mv.Type()
	var getterNames []string
	for i := 0; i < mt.NumMethod(); i++ {
		m := mt.Method(i)
		if !strings.HasPrefix(m.Name, "Get") || len(m.Name) == 3 {
			continue
		}
		// Niladic (beyond the receiver), single result of supported kind.
		if m.Type.NumIn() != 1 || m.Type.NumOut() != 1 {
			continue
		}
		if _, ok := kindOf(m.Type.Out(0)); !ok {
			continue
		}
		getterNames = append(getterNames, m.Name)
	}
	sort.Strings(getterNames)
	for _, name := range getterNames {
		out := mv.MethodByName(name).Call(nil)[0]
		val, _ := valueOf(out)
		attr := attrName(name[len("Get"):])
		attrs = append(attrs, event.Attribute{Name: attr, Value: val})
		seen[attr] = true
	}

	// Pass 2: exported fields in declaration order.
	et := elem.Type()
	for i := 0; i < et.NumField(); i++ {
		f := et.Field(i)
		if !f.IsExported() || f.Anonymous {
			continue
		}
		if _, ok := kindOf(f.Type); !ok {
			continue
		}
		attr := attrName(f.Name)
		if seen[attr] {
			continue
		}
		val, _ := valueOf(elem.Field(i))
		attrs = append(attrs, event.Attribute{Name: attr, Value: val})
		seen[attr] = true
	}
	return attrs, nil
}

// attrName lowercases the leading rune: Symbol -> symbol, URL -> uRL
// (initialisms keep their tail; attribute names are application-chosen).
func attrName(s string) string {
	r, size := utf8.DecodeRuneInString(s)
	return string(unicode.ToLower(r)) + s[size:]
}

// kindOf maps a reflect type to the event value kind it extracts to.
func kindOf(t reflect.Type) (event.Kind, bool) {
	switch t.Kind() {
	case reflect.String:
		return event.KindString, true
	case reflect.Bool:
		return event.KindBool, true
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return event.KindInt, true
	case reflect.Float32, reflect.Float64:
		return event.KindFloat, true
	default:
		return event.KindInvalid, false
	}
}

func valueOf(rv reflect.Value) (event.Value, bool) {
	switch rv.Kind() {
	case reflect.String:
		return event.String(rv.String()), true
	case reflect.Bool:
		return event.Bool(rv.Bool()), true
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return event.Int(rv.Int()), true
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return event.Int(int64(rv.Uint())), true
	case reflect.Float32, reflect.Float64:
		return event.Float(rv.Float()), true
	default:
		return event.Value{}, false
	}
}

// Encode serializes the object into the opaque payload carried by the
// event. Brokers treat the payload as a black box.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("object: encode %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// Decode reconstructs a typed object from an event payload. It is the
// only place application state is re-instantiated — at the subscriber
// runtime, never at a broker (the end-to-end event safety property).
func Decode[T any](payload []byte) (T, error) {
	var out T
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&out); err != nil {
		return out, fmt.Errorf("object: decode %T: %w", out, err)
	}
	return out, nil
}

// ToEvent assembles a routable event from an application object: class
// name, extracted meta-data attributes, and the encoded payload. When
// order is non-nil the attributes are arranged in that (generality)
// order, with unlisted attributes appended.
func ToEvent(class string, v any, order []string) (*event.Event, error) {
	attrs, err := Extract(v)
	if err != nil {
		return nil, err
	}
	payload, err := Encode(v)
	if err != nil {
		return nil, err
	}
	if order != nil {
		attrs = reorder(attrs, order)
	}
	e := event.New(class, attrs...)
	e.Payload = payload
	return e, nil
}

func reorder(attrs []event.Attribute, order []string) []event.Attribute {
	byName := make(map[string]event.Attribute, len(attrs))
	for _, a := range attrs {
		byName[a.Name] = a
	}
	out := make([]event.Attribute, 0, len(attrs))
	taken := make(map[string]bool, len(attrs))
	for _, name := range order {
		if a, ok := byName[name]; ok {
			out = append(out, a)
			taken[name] = true
		}
	}
	for _, a := range attrs {
		if !taken[a.Name] {
			out = append(out, a)
		}
	}
	return out
}
