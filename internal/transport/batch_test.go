package transport

import (
	"bytes"
	"reflect"
	"testing"

	"eventsys/internal/event"
)

func TestPublishBatchRoundTrip(t *testing.T) {
	evs := []*event.Event{
		event.NewBuilder("Stock").Str("symbol", "A").Float("price", 1.5).ID(1).Build(),
		event.NewBuilder("Stock").Str("symbol", "B").Int("volume", 99).
			Payload([]byte{1, 2, 3}).ID(2).Build(),
		event.NewBuilder("Bond").Bool("junk", true).ID(3).Build(),
	}
	raws := make([]*event.Raw, len(evs))
	for i, e := range evs {
		raws[i] = event.EncodeRaw(e)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, PublishBatch{Events: raws}); err != nil {
		t.Fatal(err)
	}
	m, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.(PublishBatch)
	if !ok {
		t.Fatalf("decoded %T, want PublishBatch", m)
	}
	if len(got.Events) != len(evs) {
		t.Fatalf("decoded %d events, want %d", len(got.Events), len(evs))
	}
	for i := range evs {
		dec := got.Events[i].Event()
		if !dec.Equal(evs[i]) || dec.ID != evs[i].ID ||
			!reflect.DeepEqual(dec.Payload, evs[i].Payload) {
			t.Errorf("event %d = %+v, want %+v", i, dec, evs[i])
		}
	}
}

func TestPublishBatchEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, PublishBatch{}); err != nil {
		t.Fatal(err)
	}
	m, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if pb, ok := m.(PublishBatch); !ok || len(pb.Events) != 0 {
		t.Fatalf("decoded %#v, want empty PublishBatch", m)
	}
}

// TestPublishBatchCountGuard rejects a frame whose declared event count
// exceeds what the body could possibly hold.
func TestPublishBatchCountGuard(t *testing.T) {
	body := []byte{0xff, 0xff, 0xff, 0xff, 0x7f} // uvarint far above len(body)
	if _, err := decodeMessage(TypePublishBatch, body, nil); err == nil {
		t.Fatal("want error for oversized batch count")
	}
}
