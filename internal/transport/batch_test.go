package transport

import (
	"bytes"
	"reflect"
	"testing"

	"eventsys/internal/event"
)

func TestPublishBatchRoundTrip(t *testing.T) {
	evs := []*event.Event{
		event.NewBuilder("Stock").Str("symbol", "A").Float("price", 1.5).ID(1).Build(),
		event.NewBuilder("Stock").Str("symbol", "B").Int("volume", 99).
			Payload([]byte{1, 2, 3}).ID(2).Build(),
		event.NewBuilder("Bond").Bool("junk", true).ID(3).Build(),
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, PublishBatch{Events: evs}); err != nil {
		t.Fatal(err)
	}
	m, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.(PublishBatch)
	if !ok {
		t.Fatalf("decoded %T, want PublishBatch", m)
	}
	if len(got.Events) != len(evs) {
		t.Fatalf("decoded %d events, want %d", len(got.Events), len(evs))
	}
	for i := range evs {
		if !reflect.DeepEqual(got.Events[i], evs[i]) {
			t.Errorf("event %d = %+v, want %+v", i, got.Events[i], evs[i])
		}
	}
}

func TestPublishBatchEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, PublishBatch{}); err != nil {
		t.Fatal(err)
	}
	m, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if pb, ok := m.(PublishBatch); !ok || len(pb.Events) != 0 {
		t.Fatalf("decoded %#v, want empty PublishBatch", m)
	}
}

// TestPublishBatchCountGuard rejects a frame whose declared event count
// exceeds what the body could possibly hold.
func TestPublishBatchCountGuard(t *testing.T) {
	body := []byte{0xff, 0xff, 0xff, 0xff, 0x7f} // uvarint far above len(body)
	if _, err := decodeMessage(TypePublishBatch, body); err == nil {
		t.Fatal("want error for oversized batch count")
	}
}
