package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"eventsys/internal/event"
	"eventsys/internal/filter"
)

// MaxFrame bounds a single message body (16 MiB).
const MaxFrame = 16 << 20

// frameHeader is the per-frame framing overhead: 4-byte length plus the
// 1-byte message type.
const frameHeader = 5

// buffer is a minimal append-based encoder.
type buffer struct {
	b []byte
}

func (w *buffer) u8(v uint8) { w.b = append(w.b, v) }
func (w *buffer) uvarint(v uint64) {
	w.b = binary.AppendUvarint(w.b, v)
}
func (w *buffer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}

func (w *buffer) bytes(p []byte) {
	w.uvarint(uint64(len(p)))
	w.b = append(w.b, p...)
}

// value delegates to the canonical value encoding in package event.
func (w *buffer) value(v event.Value) { w.b = event.AppendValue(w.b, v) }

// raw appends an already-encoded event verbatim: event frames carry the
// publisher's bytes untouched, so framing a Raw is a copy, never a
// re-encode.
func (w *buffer) raw(r *event.Raw) { w.b = append(w.b, r.Bytes()...) }

// reader is the matching decoder; it fails sticky on malformed input.
// Its interner (optional) deduplicates attribute and class names across
// every event decoded through it — one interner per connection.
type reader struct {
	b   []byte
	off int
	err error
	in  *event.Interner
}

func (r *reader) fail(msg string) {
	if r.err == nil {
		r.err = fmt.Errorf("transport: %s at offset %d", msg, r.off)
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("truncated u8")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)-r.off) < n {
		r.fail("truncated string")
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// value delegates to the canonical value decoding in package event.
func (r *reader) value() event.Value {
	if r.err != nil {
		return event.Value{}
	}
	v, n, err := event.DecodeValue(r.b[r.off:])
	if err != nil {
		if r.err == nil {
			r.err = fmt.Errorf("transport: %w (offset %d)", err, r.off)
		}
		return event.Value{}
	}
	r.off += n
	return v
}

// rawEvent validates one embedded event and returns its zero-copy Raw
// view (aliasing the frame body, which is owned by the frame's decoded
// message from here on).
func (r *reader) rawEvent() *event.Raw {
	if r.err != nil {
		return nil
	}
	raw, off, err := event.ParseRawAt(r.b, r.off, r.in)
	if err != nil {
		r.err = fmt.Errorf("transport: %w", err)
		return nil
	}
	r.off = off
	return raw
}

// --- filter encoding ---

func (w *buffer) filter(f *filter.Filter) {
	w.str(f.Class)
	w.uvarint(uint64(len(f.Constraints)))
	for _, c := range f.Constraints {
		w.str(c.Attr)
		w.u8(uint8(c.Op))
		if c.Op.NeedsOperand() {
			w.value(c.Operand)
		}
	}
}

func (r *reader) filter() *filter.Filter {
	f := &filter.Filter{Class: r.str()}
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.fail("constraint count exceeds frame")
		return nil
	}
	for i := uint64(0); i < n && r.err == nil; i++ {
		c := filter.Constraint{Attr: r.str(), Op: filter.Op(r.u8())}
		if c.Op.NeedsOperand() {
			c.Operand = r.value()
		}
		f.Constraints = append(f.Constraints, c)
	}
	if r.err != nil {
		return nil
	}
	return f
}

// framePool recycles frame write buffers: WriteFrame encodes the header
// and body into one pooled buffer and issues a single Write, so framing
// costs no allocation in steady state and one syscall per frame.
var framePool = sync.Pool{New: func() any { return new(frameBuf) }}

// frameBuf embeds the encoder so WriteFrame passes a pointer into an
// already-heap-allocated pooled object — the interface call to encode
// then forces no per-frame escape allocation.
type frameBuf struct{ w buffer }

// framePoolMax caps the buffers returned to the pool; an occasional
// giant frame must not pin its buffer for the process lifetime.
const framePoolMax = 1 << 20

// WriteFrame writes one framed message: header and body leave in a
// single Write from a pooled buffer. Event frames embed the events'
// existing encodings verbatim — the only per-frame work is the copy into
// the write buffer.
func WriteFrame(w io.Writer, m Message) error {
	fb := framePool.Get().(*frameBuf)
	if cap(fb.w.b) < frameHeader {
		fb.w.b = make([]byte, frameHeader, 512)
	}
	fb.w.b = fb.w.b[:frameHeader] // header bytes are patched below
	m.encode(&fb.w)
	n := len(fb.w.b) - frameHeader
	if n > MaxFrame {
		if cap(fb.w.b) <= framePoolMax {
			framePool.Put(fb)
		}
		return fmt.Errorf("transport: frame too large (%d bytes)", n)
	}
	binary.BigEndian.PutUint32(fb.w.b[:4], uint32(n))
	fb.w.b[4] = byte(m.Type())
	_, err := w.Write(fb.w.b)
	if cap(fb.w.b) <= framePoolMax {
		framePool.Put(fb)
	}
	if err != nil {
		return fmt.Errorf("transport: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one framed message without cross-frame name interning
// (one-shot readers, tests). Connection read loops should use a
// FrameReader instead.
func ReadFrame(rd io.Reader) (Message, error) {
	return readFrame(rd, nil)
}

// FrameReader reads frames from one connection, interning attribute and
// class names across the connection's lifetime so repeated event shapes
// decode allocation-free. Not safe for concurrent use.
type FrameReader struct {
	r  io.Reader
	in *event.Interner
}

// NewFrameReader wraps a connection's read side.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r, in: event.NewInterner()}
}

// ReadFrame reads one framed message.
func (fr *FrameReader) ReadFrame() (Message, error) {
	return readFrame(fr.r, fr.in)
}

func readFrame(rd io.Reader, in *event.Interner) (Message, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	// The body is deliberately not pooled: Raw views decoded from event
	// frames alias it for their whole lifetime.
	body := make([]byte, n)
	if _, err := io.ReadFull(rd, body); err != nil {
		return nil, fmt.Errorf("transport: read body: %w", err)
	}
	m, err := decodeMessage(MsgType(hdr[4]), body, in)
	if err != nil {
		return nil, err
	}
	return m, nil
}
