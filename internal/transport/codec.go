package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"eventsys/internal/event"
	"eventsys/internal/filter"
)

// MaxFrame bounds a single message body (16 MiB).
const MaxFrame = 16 << 20

// buffer is a minimal append-based encoder.
type buffer struct {
	b []byte
}

func (w *buffer) u8(v uint8) { w.b = append(w.b, v) }
func (w *buffer) uvarint(v uint64) {
	w.b = binary.AppendUvarint(w.b, v)
}
func (w *buffer) varint(v int64) {
	w.b = binary.AppendVarint(w.b, v)
}
func (w *buffer) f64(v float64) {
	w.b = binary.BigEndian.AppendUint64(w.b, math.Float64bits(v))
}
func (w *buffer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}
func (w *buffer) bytes(p []byte) {
	w.uvarint(uint64(len(p)))
	w.b = append(w.b, p...)
}

// reader is the matching decoder; it fails sticky on malformed input.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(msg string) {
	if r.err == nil {
		r.err = fmt.Errorf("transport: %s at offset %d", msg, r.off)
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("truncated u8")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail("truncated f64")
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)-r.off) < n {
		r.fail("truncated string")
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *reader) bytesField() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.b)-r.off) < n {
		r.fail("truncated bytes")
		return nil
	}
	if n == 0 {
		return nil
	}
	p := make([]byte, n)
	copy(p, r.b[r.off:r.off+int(n)])
	r.off += int(n)
	return p
}

// --- value, event, filter encodings ---

func (w *buffer) value(v event.Value) {
	w.u8(uint8(v.Kind()))
	switch v.Kind() {
	case event.KindString:
		w.str(v.Str())
	case event.KindInt:
		w.varint(v.IntVal())
	case event.KindFloat:
		w.f64(v.Num())
	case event.KindBool:
		if v.BoolVal() {
			w.u8(1)
		} else {
			w.u8(0)
		}
	}
}

func (r *reader) value() event.Value {
	switch event.Kind(r.u8()) {
	case event.KindString:
		return event.String(r.str())
	case event.KindInt:
		return event.Int(r.varint())
	case event.KindFloat:
		return event.Float(r.f64())
	case event.KindBool:
		return event.Bool(r.u8() == 1)
	default:
		if r.err == nil {
			r.fail("unknown value kind")
		}
		return event.Value{}
	}
}

func (w *buffer) event(e *event.Event) {
	w.str(e.Type)
	w.uvarint(e.ID)
	w.uvarint(uint64(len(e.Attrs)))
	for _, a := range e.Attrs {
		w.str(a.Name)
		w.value(a.Value)
	}
	w.bytes(e.Payload)
}

func (r *reader) event() *event.Event {
	e := &event.Event{Type: r.str(), ID: r.uvarint()}
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.fail("attribute count exceeds frame")
		return nil
	}
	e.Attrs = make([]event.Attribute, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		e.Attrs = append(e.Attrs, event.Attribute{Name: r.str(), Value: r.value()})
	}
	e.Payload = r.bytesField()
	if r.err != nil {
		return nil
	}
	return e
}

func (w *buffer) filter(f *filter.Filter) {
	w.str(f.Class)
	w.uvarint(uint64(len(f.Constraints)))
	for _, c := range f.Constraints {
		w.str(c.Attr)
		w.u8(uint8(c.Op))
		if c.Op.NeedsOperand() {
			w.value(c.Operand)
		}
	}
}

func (r *reader) filter() *filter.Filter {
	f := &filter.Filter{Class: r.str()}
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.fail("constraint count exceeds frame")
		return nil
	}
	for i := uint64(0); i < n && r.err == nil; i++ {
		c := filter.Constraint{Attr: r.str(), Op: filter.Op(r.u8())}
		if c.Op.NeedsOperand() {
			c.Operand = r.value()
		}
		f.Constraints = append(f.Constraints, c)
	}
	if r.err != nil {
		return nil
	}
	return f
}

// WriteFrame writes one framed message.
func WriteFrame(w io.Writer, m Message) error {
	var body buffer
	m.encode(&body)
	if len(body.b) > MaxFrame {
		return fmt.Errorf("transport: frame too large (%d bytes)", len(body.b))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body.b)))
	hdr[4] = byte(m.Type())
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write header: %w", err)
	}
	if _, err := w.Write(body.b); err != nil {
		return fmt.Errorf("transport: write body: %w", err)
	}
	return nil
}

// ReadFrame reads one framed message.
func ReadFrame(rd io.Reader) (Message, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(rd, body); err != nil {
		return nil, fmt.Errorf("transport: read body: %w", err)
	}
	m, err := decodeMessage(MsgType(hdr[4]), body)
	if err != nil {
		return nil, err
	}
	return m, nil
}
