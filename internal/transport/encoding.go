package transport

import (
	"eventsys/internal/event"
)

// AppendEvent appends the compact binary encoding of e (the same
// encoding Publish/Deliver frames carry on the wire) to dst and returns
// the extended slice. The canonical encoding lives in package event;
// this wrapper survives for callers that still speak in terms of the
// transport.
func AppendEvent(dst []byte, e *event.Event) []byte {
	return event.AppendEncoded(dst, e)
}

// DecodeEvent decodes one event from b, which must contain exactly one
// encoded event with no trailing bytes.
func DecodeEvent(b []byte) (*event.Event, error) {
	return event.Decode(b)
}
