package transport

import (
	"fmt"

	"eventsys/internal/event"
)

// AppendEvent appends the compact binary encoding of e (the same encoding
// Publish/Deliver frames carry on the wire) to dst and returns the
// extended slice. The durable store reuses it for on-disk record bodies,
// so a stored event and a wire event are byte-identical.
func AppendEvent(dst []byte, e *event.Event) []byte {
	w := buffer{b: dst}
	w.event(e)
	return w.b
}

// DecodeEvent decodes one event from b, which must contain exactly one
// encoded event with no trailing bytes.
func DecodeEvent(b []byte) (*event.Event, error) {
	r := &reader{b: b}
	e := r.event()
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("transport: %d trailing bytes after event", len(b)-r.off)
	}
	return e, nil
}
