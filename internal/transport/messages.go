package transport

import (
	"fmt"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/typing"
)

// MsgType tags a frame.
type MsgType uint8

// Wire message types.
const (
	TypeInvalid MsgType = iota
	TypeHello
	TypePublish
	TypeDeliver
	TypeSubscribe
	TypeSubscribeReply
	TypeReqInsert
	TypeRenew
	TypeUnsubscribe
	TypeAdvertise
	TypePublishBatch
	TypePeerHello
	TypeSubSet
	TypeSubUpdate
	TypeForward
	TypeForwardBatch
	TypeCredit
	TypeCreditAck
	TypeLinkState
	TypePeerPing
	TypePartitionRedirect
	TypeGroupAck
)

// PeerKind identifies what a connecting peer is.
type PeerKind uint8

// Peer kinds in the Hello handshake.
const (
	PeerInvalid PeerKind = iota
	PeerPublisher
	PeerSubscriber
	PeerChildBroker
	// PeerMeshBroker marks a federated peer broker connection. It never
	// travels in a Hello frame (peers handshake with PeerHello instead);
	// brokers use it to tag peer links internally.
	PeerMeshBroker
)

// Message is one wire protocol message.
type Message interface {
	Type() MsgType
	encode(*buffer)
}

// Hello opens every connection: who the peer is, its identity, and — for
// child brokers — the address it listens on (so subscription redirects
// can name it).
type Hello struct {
	Kind PeerKind
	ID   string
	Addr string
}

// Publish injects an event (publisher → broker, parent → child). The
// event travels as its canonical encoded form: the publisher encodes
// once, and every broker hop matches and relays the same bytes.
type Publish struct {
	Event *event.Raw
	// Epoch is the partition-map epoch the publisher routed this event
	// under; zero means "no epoch" (an unpartitioned publisher, or one
	// that has not yet received a PartitionRedirect). A broker holding a
	// different epoch still processes the event — interests are flooded
	// everywhere, so any ingress broker delivers completely — but
	// answers with a PartitionRedirect so future publishes fan in to
	// the owning replica.
	Epoch uint64
}

// PublishBatch injects a batch of events in one frame (publisher →
// broker, parent → child), amortizing framing and syscall cost on the
// publish fast path. Events are processed in slice order, so a batch
// preserves the publisher's ordering exactly as a sequence of Publish
// frames would.
type PublishBatch struct {
	Events []*event.Raw
	// Epoch is the partition-map epoch, exactly as on Publish.
	Epoch uint64
}

// Deliver hands an event to a subscriber (broker → subscriber). The
// subscriber runtime is the only place the raw event is materialized.
type Deliver struct {
	Event *event.Raw
	// Seq identifies this delivery within a consumer group: nonzero on
	// deliveries to group members, who acknowledge it with GroupAck so
	// the broker can advance the group cursor or redeliver on failure.
	// Zero for ordinary (non-group) subscribers — no ack expected.
	Seq uint64
}

// Subscribe runs one step of the Figure 5 placement protocol.
type Subscribe struct {
	SubscriberID string
	Filter       *filter.Filter
	// Group, when nonempty, joins a consumer group: N subscribers
	// naming the same group share one durable subscription, events are
	// divided among the live members, and a member's unacked deliveries
	// are redelivered to the survivors when it fails.
	Group string
}

// SubscribeReply answers Subscribe: join-At(Target) or accepted-At.
type SubscribeReply struct {
	Accepted bool
	// TargetAddr is the address to re-send the subscription to when not
	// accepted.
	TargetAddr string
	// Stored is the weakened filter the broker stored (renewal key).
	Stored *filter.Filter
}

// ReqInsert propagates a weakened filter from child broker to parent.
// Propagation up the broker chain is asynchronous: each broker inserts
// and autonomously forwards the further-weakened filter to its own
// parent (the in-process overlay offers a synchronous variant).
type ReqInsert struct {
	ChildID string
	Filter  *filter.Filter
}

// Renew refreshes the lease on (Filter, ID).
type Renew struct {
	ID     string
	Filter *filter.Filter
}

// Unsubscribe removes (Filter, ID) immediately.
type Unsubscribe struct {
	ID     string
	Filter *filter.Filter
}

// Advertise disseminates an event class schema and its attribute-stage
// association (Section 4.1).
type Advertise struct {
	Ad *typing.Advertisement
}

// PeerHello opens a broker-to-broker federation link (SIENA-style
// server-to-server peering over an acyclic graph). The dialing broker
// sends it first; the accepting broker replies with its own. Each side
// then sends a SubSet resync of its subscription state for the link.
type PeerHello struct {
	// ID is the sender's broker identity.
	ID string
	// Addr is the sender's listen address (operational metadata).
	Addr string
}

// SubEntry is one element of peer subscription state: a subscriber's
// original (stage-0) filter together with the receiving broker's hop
// distance from the subscriber's home broker. The receiver stores the
// hop-weakened form for matching — carrying the original keeps onward
// weakening exact at every distance — and propagates the entry to its
// other links with Hops+1, pruned by covering.
type SubEntry struct {
	Hops   int
	Filter *filter.Filter
}

// SubSet replaces the receiver's entire interest state for the sending
// link: sent on link (re-)establishment so a reconnect resynchronizes
// subscription state accumulated or lost while the link was down.
type SubSet struct {
	Entries []SubEntry
}

// SubUpdate propagates one new subscription filter across a peer link
// (incremental; SubSet is the bulk form).
type SubUpdate struct {
	Entry SubEntry
}

// Forward carries an event across a peer link (reverse-path forwarding:
// the receiver matches it locally and relays it to every other peer link
// with a matching interest, never back to the sender).
type Forward struct {
	Event *event.Raw
}

// ForwardBatch is Forward for a run of events in one frame, amortizing
// framing and syscalls exactly as PublishBatch does on the publish path.
// Slice order is the sender's forwarding order.
type ForwardBatch struct {
	Events []*event.Raw
}

// Credit grants the recipient the right to transmit Grant more events
// on this connection (credit-based flow control). The event-receiving
// side sends an initial Credit after the handshake and replenishes in
// batches as its core processes events; the sending side decrements one
// credit per event in Publish/PublishBatch/Deliver/Forward/ForwardBatch
// frames and stalls event transmission — never control frames — when it
// runs dry. A saturated receiver simply stops granting, which cascades
// hop by hop until the original publisher blocks. The scheme is
// opt-in on the sender side: a receiver that never sends Credit leaves
// the connection ungoverned (pre-credit behavior), and a sender that
// never acks is simply never gated. Both ends must still speak this
// protocol revision — a pre-credit decoder rejects the frame type and
// drops the connection — so clients and brokers upgrade together.
type Credit struct {
	Grant uint32
}

// CreditAck is the sender's one-time response to the first Credit on a
// connection: it confirms that the sender honors credit flow control
// and echoes the window it observed. Granters use it to distinguish a
// credit-governed peer from a legacy one (for stats and diagnostics);
// it carries no flow-control state itself.
type CreditAck struct {
	Window uint32
}

// LinkState floods one broker's adjacency record through the federation
// (a link-state advertisement). Every broker keeps the latest record per
// origin, keyed by Seq, and all brokers therefore converge on the same
// view of which configured links are up — the input to the deterministic
// spanning-tree election that picks which redundant links carry traffic.
// A record with a Seq not newer than the stored one is dropped without
// re-flooding, so floods terminate even on cyclic link sets.
type LinkState struct {
	// Origin is the broker whose adjacency this record describes.
	Origin string
	// Seq orders records from the same origin; higher wins.
	Seq uint64
	// Peers are the broker IDs Origin currently holds live links to.
	Peers []string
	// Addr is Origin's client listen address, carried so partition
	// redirects can name where publishers should dial.
	Addr string
	// Part is Origin's partition replica group ("" = unpartitioned).
	// Brokers advertising the same group divide the event space among
	// themselves; the partition map is derived from the converged
	// link-state database, never separately gossiped.
	Part string
}

// ReplicaInfo names one replica in a PartitionRedirect.
type ReplicaInfo struct {
	ID   string
	Addr string
}

// PartitionRedirect answers a Publish/PublishBatch whose Epoch differs
// from the broker's current partition map. The in-flight events were
// still processed (any ingress broker delivers completely — ownership
// is load placement, not correctness), but the publisher should adopt
// the carried map and fan subsequent events in to the owning replicas.
type PartitionRedirect struct {
	// Epoch is the current partition-map epoch.
	Epoch uint64
	// Partitions is the fixed partition count.
	Partitions uint32
	// Replicas is the participating replica set, sorted by ID.
	Replicas []ReplicaInfo
}

// GroupAck acknowledges one consumer-group delivery (subscriber →
// broker): the member finished handling the delivery with this Seq.
// The broker releases its lease and advances the group's durable
// cursor past every contiguously acked event.
type GroupAck struct {
	Seq uint64
}

// PeerPing is the peer-link heartbeat: an empty frame on the control
// lane whose only job is to be received. Liveness is inferred from frame
// arrival of any kind, so a ping needs no reply — both sides ping, both
// sides observe traffic, and a silent peer trips the dead-link timeout.
type PeerPing struct{}

// Type implementations.
func (Hello) Type() MsgType             { return TypeHello }
func (Publish) Type() MsgType           { return TypePublish }
func (PublishBatch) Type() MsgType      { return TypePublishBatch }
func (Deliver) Type() MsgType           { return TypeDeliver }
func (Subscribe) Type() MsgType         { return TypeSubscribe }
func (SubscribeReply) Type() MsgType    { return TypeSubscribeReply }
func (ReqInsert) Type() MsgType         { return TypeReqInsert }
func (Renew) Type() MsgType             { return TypeRenew }
func (Unsubscribe) Type() MsgType       { return TypeUnsubscribe }
func (Advertise) Type() MsgType         { return TypeAdvertise }
func (PeerHello) Type() MsgType         { return TypePeerHello }
func (SubSet) Type() MsgType            { return TypeSubSet }
func (SubUpdate) Type() MsgType         { return TypeSubUpdate }
func (Forward) Type() MsgType           { return TypeForward }
func (ForwardBatch) Type() MsgType      { return TypeForwardBatch }
func (Credit) Type() MsgType            { return TypeCredit }
func (CreditAck) Type() MsgType         { return TypeCreditAck }
func (LinkState) Type() MsgType         { return TypeLinkState }
func (PeerPing) Type() MsgType          { return TypePeerPing }
func (PartitionRedirect) Type() MsgType { return TypePartitionRedirect }
func (GroupAck) Type() MsgType          { return TypeGroupAck }

func (m Hello) encode(w *buffer) {
	w.u8(uint8(m.Kind))
	w.str(m.ID)
	w.str(m.Addr)
}

func (m Publish) encode(w *buffer) {
	w.uvarint(m.Epoch)
	w.raw(m.Event)
}

func (m Deliver) encode(w *buffer) {
	w.uvarint(m.Seq)
	w.raw(m.Event)
}

func (m PublishBatch) encode(w *buffer) {
	w.uvarint(m.Epoch)
	w.uvarint(uint64(len(m.Events)))
	for _, e := range m.Events {
		w.raw(e)
	}
}

func (m Subscribe) encode(w *buffer) {
	w.str(m.SubscriberID)
	w.filter(m.Filter)
	w.str(m.Group)
}

func (m SubscribeReply) encode(w *buffer) {
	if m.Accepted {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.str(m.TargetAddr)
	if m.Stored != nil {
		w.u8(1)
		w.filter(m.Stored)
	} else {
		w.u8(0)
	}
}

func (m ReqInsert) encode(w *buffer) {
	w.str(m.ChildID)
	w.filter(m.Filter)
}

func (m Renew) encode(w *buffer) {
	w.str(m.ID)
	w.filter(m.Filter)
}

func (m Unsubscribe) encode(w *buffer) {
	w.str(m.ID)
	w.filter(m.Filter)
}

func (m PeerHello) encode(w *buffer) {
	w.str(m.ID)
	w.str(m.Addr)
}

func (e SubEntry) encode(w *buffer) {
	w.uvarint(uint64(e.Hops))
	w.filter(e.Filter)
}

func (m SubSet) encode(w *buffer) {
	w.uvarint(uint64(len(m.Entries)))
	for _, e := range m.Entries {
		e.encode(w)
	}
}

func (m SubUpdate) encode(w *buffer) { m.Entry.encode(w) }

func (m Forward) encode(w *buffer) { w.raw(m.Event) }

func (m ForwardBatch) encode(w *buffer) {
	w.uvarint(uint64(len(m.Events)))
	for _, e := range m.Events {
		w.raw(e)
	}
}

func (m Credit) encode(w *buffer)    { w.uvarint(uint64(m.Grant)) }
func (m CreditAck) encode(w *buffer) { w.uvarint(uint64(m.Window)) }

func (m LinkState) encode(w *buffer) {
	w.str(m.Origin)
	w.uvarint(m.Seq)
	w.uvarint(uint64(len(m.Peers)))
	for _, p := range m.Peers {
		w.str(p)
	}
	w.str(m.Addr)
	w.str(m.Part)
}

func (PeerPing) encode(*buffer) {}

func (m PartitionRedirect) encode(w *buffer) {
	w.uvarint(m.Epoch)
	w.uvarint(uint64(m.Partitions))
	w.uvarint(uint64(len(m.Replicas)))
	for _, r := range m.Replicas {
		w.str(r.ID)
		w.str(r.Addr)
	}
}

func (m GroupAck) encode(w *buffer) { w.uvarint(m.Seq) }

func (m Advertise) encode(w *buffer) {
	w.str(m.Ad.Class)
	w.uvarint(uint64(len(m.Ad.Attrs)))
	for _, a := range m.Ad.Attrs {
		w.str(a)
	}
	w.uvarint(uint64(len(m.Ad.StageAttrs)))
	for _, n := range m.Ad.StageAttrs {
		w.uvarint(uint64(n))
	}
}

// u32capped decodes a uvarint bounded to uint32 (credit quantities); an
// implausible value fails the frame rather than wrapping.
func (r *reader) u32capped() uint32 {
	v := r.uvarint()
	if v > 1<<32-1 && r.err == nil {
		r.fail("implausible credit quantity")
		return 0
	}
	return uint32(v)
}

// subEntry decodes one SubEntry, bounding the hop count (an
// attacker-controlled uvarint) to a sane distance.
func (r *reader) subEntry() SubEntry {
	hops := r.uvarint()
	if hops > 1<<20 && r.err == nil {
		r.fail("implausible hop count")
		return SubEntry{}
	}
	return SubEntry{Hops: int(hops), Filter: r.filter()}
}

func decodeMessage(t MsgType, body []byte, in *event.Interner) (Message, error) {
	r := &reader{b: body, in: in}
	var m Message
	switch t {
	case TypeHello:
		m = Hello{Kind: PeerKind(r.u8()), ID: r.str(), Addr: r.str()}
	case TypePublish:
		m = Publish{Epoch: r.uvarint(), Event: r.rawEvent()}
	case TypePublishBatch:
		epoch := r.uvarint()
		n := r.uvarint()
		if n > uint64(len(body)) {
			return nil, fmt.Errorf("transport: batch event count exceeds frame")
		}
		// Cap the preallocation: the count is attacker-controlled and the
		// frame-size bound alone would let one cheap frame reserve ~128
		// MiB of pointers. Decoding grows the slice as events prove real.
		capHint := n
		if capHint > 1024 {
			capHint = 1024
		}
		pb := PublishBatch{Epoch: epoch, Events: make([]*event.Raw, 0, capHint)}
		for i := uint64(0); i < n && r.err == nil; i++ {
			pb.Events = append(pb.Events, r.rawEvent())
		}
		m = pb
	case TypeDeliver:
		m = Deliver{Seq: r.uvarint(), Event: r.rawEvent()}
	case TypePeerHello:
		m = PeerHello{ID: r.str(), Addr: r.str()}
	case TypeSubSet:
		n := r.uvarint()
		if n > uint64(len(body)) {
			return nil, fmt.Errorf("transport: subset entry count exceeds frame")
		}
		capHint := n
		if capHint > 1024 {
			capHint = 1024
		}
		ss := SubSet{Entries: make([]SubEntry, 0, capHint)}
		for i := uint64(0); i < n && r.err == nil; i++ {
			ss.Entries = append(ss.Entries, r.subEntry())
		}
		m = ss
	case TypeSubUpdate:
		m = SubUpdate{Entry: r.subEntry()}
	case TypeForward:
		m = Forward{Event: r.rawEvent()}
	case TypeForwardBatch:
		n := r.uvarint()
		if n > uint64(len(body)) {
			return nil, fmt.Errorf("transport: forward batch event count exceeds frame")
		}
		capHint := n
		if capHint > 1024 {
			capHint = 1024
		}
		fb := ForwardBatch{Events: make([]*event.Raw, 0, capHint)}
		for i := uint64(0); i < n && r.err == nil; i++ {
			fb.Events = append(fb.Events, r.rawEvent())
		}
		m = fb
	case TypeCredit:
		m = Credit{Grant: r.u32capped()}
	case TypeCreditAck:
		m = CreditAck{Window: r.u32capped()}
	case TypeLinkState:
		ls := LinkState{Origin: r.str(), Seq: r.uvarint()}
		n := r.uvarint()
		if n > uint64(len(body)) {
			return nil, fmt.Errorf("transport: link state peer count exceeds frame")
		}
		capHint := n
		if capHint > 1024 {
			capHint = 1024
		}
		ls.Peers = make([]string, 0, capHint)
		for i := uint64(0); i < n && r.err == nil; i++ {
			ls.Peers = append(ls.Peers, r.str())
		}
		ls.Addr = r.str()
		ls.Part = r.str()
		m = ls
	case TypePeerPing:
		m = PeerPing{}
	case TypePartitionRedirect:
		pr := PartitionRedirect{Epoch: r.uvarint(), Partitions: r.u32capped()}
		n := r.uvarint()
		if n > uint64(len(body)) {
			return nil, fmt.Errorf("transport: redirect replica count exceeds frame")
		}
		capHint := n
		if capHint > 1024 {
			capHint = 1024
		}
		pr.Replicas = make([]ReplicaInfo, 0, capHint)
		for i := uint64(0); i < n && r.err == nil; i++ {
			pr.Replicas = append(pr.Replicas, ReplicaInfo{ID: r.str(), Addr: r.str()})
		}
		m = pr
	case TypeGroupAck:
		m = GroupAck{Seq: r.uvarint()}
	case TypeSubscribe:
		m = Subscribe{SubscriberID: r.str(), Filter: r.filter(), Group: r.str()}
	case TypeSubscribeReply:
		rep := SubscribeReply{Accepted: r.u8() == 1, TargetAddr: r.str()}
		if r.u8() == 1 {
			rep.Stored = r.filter()
		}
		m = rep
	case TypeReqInsert:
		m = ReqInsert{ChildID: r.str(), Filter: r.filter()}
	case TypeRenew:
		m = Renew{ID: r.str(), Filter: r.filter()}
	case TypeUnsubscribe:
		m = Unsubscribe{ID: r.str(), Filter: r.filter()}
	case TypeAdvertise:
		ad := &typing.Advertisement{Class: r.str()}
		na := r.uvarint()
		if na > uint64(len(body)) {
			return nil, fmt.Errorf("transport: advert attr count exceeds frame")
		}
		for i := uint64(0); i < na && r.err == nil; i++ {
			ad.Attrs = append(ad.Attrs, r.str())
		}
		ns := r.uvarint()
		if ns > uint64(len(body)) {
			return nil, fmt.Errorf("transport: advert stage count exceeds frame")
		}
		for i := uint64(0); i < ns && r.err == nil; i++ {
			ad.StageAttrs = append(ad.StageAttrs, int(r.uvarint()))
		}
		m = Advertise{Ad: ad}
	default:
		return nil, fmt.Errorf("transport: unknown message type %d", t)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("transport: %d trailing bytes in %d message", len(body)-r.off, t)
	}
	return m, nil
}
