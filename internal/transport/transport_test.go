package transport

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand/v2"
	"reflect"
	"slices"
	"strings"
	"testing"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/typing"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, m); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes left after read", buf.Len())
	}
	return got
}

func TestHelloRoundTrip(t *testing.T) {
	m := Hello{Kind: PeerChildBroker, ID: "N2.1", Addr: "127.0.0.1:9000"}
	got := roundTrip(t, m).(Hello)
	if got != m {
		t.Errorf("got %+v, want %+v", got, m)
	}
}

func TestPublishDeliverRoundTrip(t *testing.T) {
	e := event.NewBuilder("Stock").
		Str("symbol", "Foo").
		Float("price", 10.25).
		Int("volume", -3).
		Bool("hot", true).
		Payload([]byte{0, 1, 2, 255}).
		ID(77).
		Build()
	got := roundTrip(t, Publish{Event: event.EncodeRaw(e)}).(Publish)
	if !got.Event.Event().Equal(e) || got.Event.EventID() != 77 || !bytes.Equal(got.Event.Payload(), e.Payload) {
		t.Errorf("event round trip: %s vs %s", got.Event.Event(), e)
	}
	// Kinds survive exactly — through the lazy raw view and the decode.
	v, _ := got.Event.Lookup("volume")
	if v.Kind() != event.KindInt {
		t.Errorf("volume kind = %v", v.Kind())
	}
	d := roundTrip(t, Deliver{Event: event.EncodeRaw(e)}).(Deliver)
	if !d.Event.Event().Equal(e) {
		t.Error("deliver round trip failed")
	}
}

func TestEmptyEventRoundTrip(t *testing.T) {
	e := event.New("X")
	got := roundTrip(t, Publish{Event: event.EncodeRaw(e)}).(Publish)
	if !got.Event.Event().Equal(e) || got.Event.Payload() != nil {
		t.Errorf("empty event round trip: %+v", got.Event.Event())
	}
}

func TestSubscribeRoundTrip(t *testing.T) {
	f := filter.MustParseFilter(`class = "Stock" && symbol = "Foo" && price < 10 && note prefix "a" && x any && y exists`)
	got := roundTrip(t, Subscribe{SubscriberID: "s1", Filter: f}).(Subscribe)
	if got.SubscriberID != "s1" || !got.Filter.Equal(f) {
		t.Errorf("got %+v", got)
	}
}

func TestSubscribeReplyRoundTrip(t *testing.T) {
	f := filter.MustParseFilter(`class = "Stock" && symbol = "A"`)
	for _, m := range []SubscribeReply{
		{Accepted: true, Stored: f},
		{Accepted: false, TargetAddr: "10.0.0.1:99"},
	} {
		got := roundTrip(t, m).(SubscribeReply)
		if got.Accepted != m.Accepted || got.TargetAddr != m.TargetAddr {
			t.Errorf("got %+v, want %+v", got, m)
		}
		if (m.Stored == nil) != (got.Stored == nil) {
			t.Errorf("stored presence mismatch")
		}
		if m.Stored != nil && !got.Stored.Equal(m.Stored) {
			t.Errorf("stored filter mismatch")
		}
	}
}

func TestReqInsertRoundTrip(t *testing.T) {
	f := filter.MustParseFilter(`class = "Stock" && symbol = "A"`)
	got := roundTrip(t, ReqInsert{ChildID: "N1.2", Filter: f}).(ReqInsert)
	if got.ChildID != "N1.2" || !got.Filter.Equal(f) {
		t.Errorf("got %+v", got)
	}
}

func TestRenewUnsubscribeRoundTrip(t *testing.T) {
	f := filter.MustParseFilter(`x = 1`)
	g := roundTrip(t, Renew{ID: "s9", Filter: f}).(Renew)
	if g.ID != "s9" || !g.Filter.Equal(f) {
		t.Errorf("renew: %+v", g)
	}
	u := roundTrip(t, Unsubscribe{ID: "s9", Filter: f}).(Unsubscribe)
	if u.ID != "s9" || !u.Filter.Equal(f) {
		t.Errorf("unsubscribe: %+v", u)
	}
}

func TestAdvertiseRoundTrip(t *testing.T) {
	ad, err := typing.NewAdvertisement("Biblio", 4, "year", "conference", "author", "title")
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, Advertise{Ad: ad}).(Advertise)
	if got.Ad.Class != "Biblio" || !reflect.DeepEqual(got.Ad.Attrs, ad.Attrs) ||
		!reflect.DeepEqual(got.Ad.StageAttrs, ad.StageAttrs) {
		t.Errorf("got %+v, want %+v", got.Ad, ad)
	}
	if err := got.Ad.Validate(); err != nil {
		t.Errorf("decoded advert invalid: %v", err)
	}
}

func TestLinkStateRoundTrip(t *testing.T) {
	for _, m := range []LinkState{
		{Origin: "geneva", Seq: 42, Peers: []string{"basel", "zurich"}},
		{Origin: "island", Seq: 1}, // no peers: a broker whose last link just died
		// A partitioned replica: listen address and replica group ride
		// on the LSA (the partition map is derived, never gossiped).
		{Origin: "lyon", Seq: 7, Peers: []string{"geneva"}, Addr: "10.1.2.3:7070", Part: "shard-a"},
	} {
		got := roundTrip(t, m).(LinkState)
		if got.Origin != m.Origin || got.Seq != m.Seq || !slices.Equal(got.Peers, m.Peers) ||
			got.Addr != m.Addr || got.Part != m.Part {
			t.Errorf("got %+v, want %+v", got, m)
		}
	}
}

func TestPartitionRedirectRoundTrip(t *testing.T) {
	for _, m := range []PartitionRedirect{
		{
			Epoch:      0xdeadbeefcafe0001,
			Partitions: 64,
			Replicas: []ReplicaInfo{
				{ID: "b1", Addr: "10.0.0.1:7070"},
				{ID: "b2", Addr: "10.0.0.2:7070"},
				{ID: "b3", Addr: "10.0.0.3:7070"},
			},
		},
		// A lone replica still redirects (its map has a real epoch).
		{Epoch: 1, Partitions: 1, Replicas: []ReplicaInfo{{ID: "only", Addr: "[::1]:9"}}},
	} {
		got := roundTrip(t, m).(PartitionRedirect)
		if got.Epoch != m.Epoch || got.Partitions != m.Partitions ||
			!slices.Equal(got.Replicas, m.Replicas) {
			t.Errorf("got %+v, want %+v", got, m)
		}
	}
}

func TestPublishEpochRoundTrip(t *testing.T) {
	e := event.NewBuilder("Stock").Str("symbol", "Foo").ID(3).Build()
	p := roundTrip(t, Publish{Event: event.EncodeRaw(e), Epoch: 0x0102030405060708}).(Publish)
	if p.Epoch != 0x0102030405060708 || !p.Event.Event().Equal(e) {
		t.Errorf("publish epoch round trip: epoch=%#x event=%s", p.Epoch, p.Event.Event())
	}
	// Zero epoch — an unpartitioned publisher — survives too.
	p = roundTrip(t, Publish{Event: event.EncodeRaw(e)}).(Publish)
	if p.Epoch != 0 {
		t.Errorf("zero epoch round trip: %#x", p.Epoch)
	}
	b := roundTrip(t, PublishBatch{
		Events: []*event.Raw{event.EncodeRaw(e)},
		Epoch:  42,
	}).(PublishBatch)
	if b.Epoch != 42 || len(b.Events) != 1 || !b.Events[0].Event().Equal(e) {
		t.Errorf("batch epoch round trip: %+v", b)
	}
}

func TestGroupDeliveryRoundTrip(t *testing.T) {
	f := filter.MustParseFilter(`class = "Stock"`)
	s := roundTrip(t, Subscribe{SubscriberID: "w1", Filter: f, Group: "billing"}).(Subscribe)
	if s.Group != "billing" || s.SubscriberID != "w1" {
		t.Errorf("group subscribe round trip: %+v", s)
	}
	e := event.NewBuilder("Stock").Int("volume", 9).ID(11).Build()
	d := roundTrip(t, Deliver{Event: event.EncodeRaw(e), Seq: 1 << 40}).(Deliver)
	if d.Seq != 1<<40 || !d.Event.Event().Equal(e) {
		t.Errorf("group deliver round trip: seq=%d", d.Seq)
	}
	a := roundTrip(t, GroupAck{Seq: 1 << 40}).(GroupAck)
	if a.Seq != 1<<40 {
		t.Errorf("group ack round trip: %+v", a)
	}
}

func TestPeerPingRoundTrip(t *testing.T) {
	roundTrip(t, PeerPing{}) // body-less frame: type tag alone must survive
}

func TestZeroFilterRoundTrip(t *testing.T) {
	got := roundTrip(t, Subscribe{SubscriberID: "s", Filter: &filter.Filter{}}).(Subscribe)
	if got.Filter.Class != "" || len(got.Filter.Constraints) != 0 {
		t.Errorf("zero filter round trip: %+v", got.Filter)
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		Hello{Kind: PeerPublisher, ID: "p"},
		Publish{Event: event.EncodeRaw(event.New("A"))},
		Renew{ID: "x", Filter: filter.MustParseFilter(`a = 1`)},
	}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type() != want.Type() {
			t.Fatalf("frame %d: type %v, want %v", i, got.Type(), want.Type())
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestMalformedFrames(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", []byte{0, 0}},
		{"unknown type", frame(99, nil)},
		{"truncated body", []byte{0, 0, 0, 10, byte(TypePublish), 1, 2}},
		{"garbage publish", frame(byte(TypePublish), []byte{0xff, 0xff, 0xff})},
		{"trailing bytes", frame(byte(TypeHello), append(helloBody(), 0xAA))},
		{"bad value kind", frame(byte(TypePublish), badKindEvent())},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ReadFrame(bytes.NewReader(tt.data))
			if err == nil {
				t.Error("malformed frame decoded without error")
			}
		})
	}
}

func frame(typ byte, body []byte) []byte {
	out := make([]byte, 5+len(body))
	binary.BigEndian.PutUint32(out[:4], uint32(len(body)))
	out[4] = typ
	copy(out[5:], body)
	return out
}

func helloBody() []byte {
	var w buffer
	Hello{Kind: PeerPublisher, ID: "x", Addr: ""}.encode(&w)
	return w.b
}

func badKindEvent() []byte {
	var w buffer
	w.str("T")
	w.uvarint(1)
	w.uvarint(1) // one attribute
	w.str("a")
	w.u8(200) // invalid kind
	w.bytes(nil)
	return w.b
}

func TestOversizeFrameRejected(t *testing.T) {
	data := frame(byte(TypePublish), nil)
	binary.BigEndian.PutUint32(data[:4], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(data)); err == nil ||
		!strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversize frame: %v", err)
	}
}

func TestFuzzDecodeNoPanic(t *testing.T) {
	rng := rand.New(rand.NewPCG(55, 66))
	for i := 0; i < 5000; i++ {
		n := rng.IntN(64)
		body := make([]byte, n)
		for j := range body {
			body[j] = byte(rng.UintN(256))
		}
		typ := byte(rng.UintN(12))
		// Must never panic; errors are fine.
		_, _ = ReadFrame(bytes.NewReader(frame(typ, body)))
	}
}

func TestRandomEventFilterRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 88))
	for i := 0; i < 500; i++ {
		e := randomEvent(rng)
		got := roundTrip(t, Publish{Event: event.EncodeRaw(e)}).(Publish)
		if !got.Event.Event().Equal(e) {
			t.Fatalf("event diverged: %s vs %s", got.Event.Event(), e)
		}
		f := randomFilter(rng)
		gotF := roundTrip(t, Subscribe{SubscriberID: "s", Filter: f}).(Subscribe)
		if !gotF.Filter.Equal(f) {
			t.Fatalf("filter diverged: %s vs %s", gotF.Filter, f)
		}
	}
}

func randomEvent(rng *rand.Rand) *event.Event {
	b := event.NewBuilder("T" + string(rune('A'+rng.IntN(3))))
	for i := 0; i < rng.IntN(5); i++ {
		name := string(rune('a' + i))
		switch rng.IntN(4) {
		case 0:
			b.Str(name, strings.Repeat("x", rng.IntN(10)))
		case 1:
			b.Int(name, rng.Int64()-rng.Int64())
		case 2:
			b.Float(name, rng.Float64()*1e6-5e5)
		default:
			b.Bool(name, rng.IntN(2) == 0)
		}
	}
	if rng.IntN(2) == 0 {
		p := make([]byte, rng.IntN(32))
		for i := range p {
			p[i] = byte(rng.UintN(256))
		}
		b.Payload(p)
	}
	return b.ID(rng.Uint64()).Build()
}

func randomFilter(rng *rand.Rand) *filter.Filter {
	f := &filter.Filter{}
	if rng.IntN(2) == 0 {
		f.Class = "C" + string(rune('A'+rng.IntN(3)))
	}
	ops := []filter.Op{filter.OpEq, filter.OpNe, filter.OpLt, filter.OpLe, filter.OpGt,
		filter.OpGe, filter.OpPrefix, filter.OpSuffix, filter.OpContains, filter.OpExists, filter.OpAny}
	for i := 0; i < rng.IntN(4); i++ {
		op := ops[rng.IntN(len(ops))]
		c := filter.Constraint{Attr: string(rune('a' + rng.IntN(4))), Op: op}
		if op.NeedsOperand() {
			switch rng.IntN(3) {
			case 0:
				c.Operand = event.String("v" + string(rune('0'+rng.IntN(10))))
			case 1:
				c.Operand = event.Int(int64(rng.IntN(100)))
			default:
				c.Operand = event.Float(rng.Float64() * 100)
			}
		}
		f.Constraints = append(f.Constraints, c)
	}
	return f
}

func TestCreditRoundTrip(t *testing.T) {
	for _, grant := range []uint32{0, 1, 512, 1 << 31} {
		got := roundTrip(t, Credit{Grant: grant}).(Credit)
		if got.Grant != grant {
			t.Errorf("credit grant %d round-tripped to %d", grant, got.Grant)
		}
	}
	ack := roundTrip(t, CreditAck{Window: 1024}).(CreditAck)
	if ack.Window != 1024 {
		t.Errorf("credit ack window 1024 round-tripped to %d", ack.Window)
	}
}
