// Package transport defines the binary wire protocol spoken between
// networked brokers, publishers and subscribers (internal/broker) —
// Section 4's broker interactions serialized for TCP.
//
// Framing: every message is [4-byte big-endian body length][1-byte
// message type][body]. Bodies use a compact binary encoding: uvarint
// lengths, varint integers, IEEE-754 floats, length-prefixed strings.
// Frames are capped at MaxFrame to bound memory at untrusted peers, and
// every count read from the wire is validated against the frame size
// before allocation.
//
// The protocol carries exactly the interactions of Figures 5 and 6:
// Subscribe/SubscribeReply (placement), ReqInsert (upward filter
// propagation), Renew (leases), Publish/Deliver (event flow),
// PublishBatch (a coalesced run of publishes in one frame, amortizing
// framing and syscalls on the fast path — order within the batch is the
// publisher's order), Advertise (schema dissemination), plus a Hello
// handshake identifying the peer.
//
// Concurrency and ownership: encoders and decoders are stateless;
// WriteFrame and ReadFrame are safe for concurrent use on distinct
// writers/readers, but a single net.Conn needs external serialization
// per direction (the broker gives each connection one reader and one
// writer goroutine). Decoded messages own their memory — nothing
// references the read buffer after ReadFrame returns. The durable store
// reuses the event encoding (AppendEvent/DecodeEvent), so a stored event
// and a wire event are byte-identical.
package transport
