package transport

import (
	"bytes"
	"testing"

	"eventsys/internal/filter"
)

// FuzzReadFrame ensures frame decoding never panics or over-allocates on
// adversarial input, and that whatever decodes re-encodes to an
// equivalent frame.
func FuzzReadFrame(f *testing.F) {
	// Seed with every valid message type round-tripped.
	var buf bytes.Buffer
	_ = WriteFrame(&buf, Hello{Kind: PeerPublisher, ID: "p", Addr: "a:1"})
	f.Add(buf.Bytes())
	buf.Reset()
	_ = WriteFrame(&buf, Subscribe{SubscriberID: "s", Filter: mustFilter()})
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 1, 2, 0})
	f.Add([]byte{255, 255, 255, 255, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode to the same type.
		var out bytes.Buffer
		if err := WriteFrame(&out, m); err != nil {
			t.Fatalf("re-encode of decoded message failed: %v", err)
		}
		m2, err := ReadFrame(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m2.Type() != m.Type() {
			t.Fatalf("type changed through round trip: %v vs %v", m.Type(), m2.Type())
		}
	})
}

func mustFilter() *filter.Filter {
	return filter.MustParseFilter(`class = "Stock" && price < 10`)
}
