package transport

import (
	"bytes"
	"encoding/binary"
	"testing"

	"eventsys/internal/event"
	"eventsys/internal/filter"
)

// FuzzReadFrame ensures frame decoding never panics or over-allocates on
// adversarial input, and that whatever decodes re-encodes to an
// equivalent frame.
func FuzzReadFrame(f *testing.F) {
	// Seed with every valid message type round-tripped.
	var buf bytes.Buffer
	_ = WriteFrame(&buf, Hello{Kind: PeerPublisher, ID: "p", Addr: "a:1"})
	f.Add(buf.Bytes())
	buf.Reset()
	_ = WriteFrame(&buf, Subscribe{SubscriberID: "s", Filter: mustFilter()})
	f.Add(buf.Bytes())
	for _, m := range peerSeedFrames() {
		buf.Reset()
		_ = WriteFrame(&buf, m)
		f.Add(buf.Bytes())
	}
	f.Add([]byte{0, 0, 0, 1, 2, 0})
	f.Add([]byte{255, 255, 255, 255, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode to the same type.
		var out bytes.Buffer
		if err := WriteFrame(&out, m); err != nil {
			t.Fatalf("re-encode of decoded message failed: %v", err)
		}
		m2, err := ReadFrame(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m2.Type() != m.Type() {
			t.Fatalf("type changed through round trip: %v vs %v", m.Type(), m2.Type())
		}
	})
}

func mustFilter() *filter.Filter {
	return filter.MustParseFilter(`class = "Stock" && price < 10`)
}

// peerSeedFrames returns one valid instance of every federation frame.
func peerSeedFrames() []Message {
	ev := event.EncodeRaw(event.NewBuilder("Stock").Str("symbol", "ACME").Float("price", 9.5).ID(7).Build())
	return []Message{
		PeerHello{ID: "B1", Addr: "127.0.0.1:7001"},
		SubUpdate{Entry: SubEntry{Hops: 2, Filter: mustFilter()}},
		SubSet{Entries: []SubEntry{
			{Hops: 1, Filter: mustFilter()},
			{Hops: 3, Filter: filter.MustParseFilter(`class = "Bond"`)},
		}},
		Forward{Event: ev},
		ForwardBatch{Events: []*event.Raw{ev, ev}},
	}
}

// FuzzPeerFrames hammers the federation-frame decoders specifically:
// the fuzzer mutates valid PeerHello/SubSet/SubUpdate/Forward/
// ForwardBatch frames (plus hand-made corruptions), and the decoder must
// never panic, never over-allocate, and must re-encode whatever it
// accepts into an equivalent frame.
func FuzzPeerFrames(f *testing.F) {
	var buf bytes.Buffer
	for _, m := range peerSeedFrames() {
		buf.Reset()
		_ = WriteFrame(&buf, m)
		f.Add(buf.Bytes())
		// Truncated variant: header shortened to half the body.
		b := append([]byte(nil), buf.Bytes()...)
		if len(b) > 10 {
			half := b[:5+(len(b)-5)/2]
			binary.BigEndian.PutUint32(half[:4], uint32(len(half)-5))
			f.Add(half)
		}
		// Corrupt variant: a flipped byte mid-body.
		c := append([]byte(nil), buf.Bytes()...)
		c[5+(len(c)-5)/2] ^= 0xff
		f.Add(c)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		switch m.(type) {
		case PeerHello, SubSet, SubUpdate, Forward, ForwardBatch:
		default:
			return // only peer frames are this target's concern
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, m); err != nil {
			t.Fatalf("re-encode of decoded %T failed: %v", m, err)
		}
		m2, err := ReadFrame(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m2.Type() != m.Type() {
			t.Fatalf("type changed through round trip: %v vs %v", m.Type(), m2.Type())
		}
	})
}

// FuzzCreditFrames hammers the flow-control frame decoders: the fuzzer
// mutates valid Credit/CreditAck frames plus hand-made corruptions
// (oversized uvarints, truncated bodies, trailing bytes), and the
// decoder must never panic and must re-encode whatever it accepts into
// an identical frame — credit quantities steer sender admission, so a
// mis-decoded grant would silently widen or wedge a link.
func FuzzCreditFrames(f *testing.F) {
	var buf bytes.Buffer
	for _, m := range []Message{
		Credit{Grant: 1}, Credit{Grant: 512}, Credit{Grant: 1<<32 - 1},
		CreditAck{Window: 1024}, CreditAck{Window: 0},
	} {
		buf.Reset()
		_ = WriteFrame(&buf, m)
		f.Add(buf.Bytes())
	}
	// A uvarint exceeding uint32: must be rejected, not wrapped.
	f.Add([]byte{0, 0, 0, 6, byte(TypeCredit), 0xff, 0xff, 0xff, 0xff, 0x7f})
	// Trailing garbage after a valid grant.
	f.Add([]byte{0, 0, 0, 3, byte(TypeCredit), 0x01, 0x00})
	// Truncated: length promises more body than present.
	f.Add([]byte{0, 0, 0, 2, byte(TypeCreditAck)})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var grant, window uint32
		switch c := m.(type) {
		case Credit:
			grant = c.Grant
		case CreditAck:
			window = c.Window
		default:
			return // only flow-control frames are this target's concern
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, m); err != nil {
			t.Fatalf("re-encode of decoded %T failed: %v", m, err)
		}
		m2, err := ReadFrame(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		switch c2 := m2.(type) {
		case Credit:
			if c2.Grant != grant {
				t.Fatalf("grant changed through round trip: %d vs %d", c2.Grant, grant)
			}
		case CreditAck:
			if c2.Window != window {
				t.Fatalf("window changed through round trip: %d vs %d", c2.Window, window)
			}
		default:
			t.Fatalf("type changed through round trip: %T vs %T", m2, m)
		}
	})
}
