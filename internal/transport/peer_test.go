package transport

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"eventsys/internal/event"
	"eventsys/internal/filter"
)

func TestPeerHelloRoundTrip(t *testing.T) {
	m := PeerHello{ID: "B2", Addr: "127.0.0.1:7002"}
	got := roundTrip(t, m).(PeerHello)
	if got != m {
		t.Errorf("got %+v, want %+v", got, m)
	}
}

func TestSubUpdateRoundTrip(t *testing.T) {
	f := filter.MustParseFilter(`class = "Stock" && symbol = "ACME" && price < 10`)
	m := SubUpdate{Entry: SubEntry{Hops: 3, Filter: f}}
	got := roundTrip(t, m).(SubUpdate)
	if got.Entry.Hops != 3 || !got.Entry.Filter.Equal(f) {
		t.Errorf("got %+v", got)
	}
}

func TestSubSetRoundTrip(t *testing.T) {
	m := SubSet{Entries: []SubEntry{
		{Hops: 1, Filter: filter.MustParseFilter(`class = "Stock" && price < 10`)},
		{Hops: 2, Filter: filter.MustParseFilter(`class = "Bond"`)},
		{Hops: 7, Filter: &filter.Filter{}},
	}}
	got := roundTrip(t, m).(SubSet)
	if len(got.Entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(got.Entries))
	}
	for i, e := range got.Entries {
		if e.Hops != m.Entries[i].Hops || !e.Filter.Equal(m.Entries[i].Filter) {
			t.Errorf("entry %d: got %+v, want %+v", i, e, m.Entries[i])
		}
	}
}

func TestSubSetEmptyRoundTrip(t *testing.T) {
	got := roundTrip(t, SubSet{}).(SubSet)
	if len(got.Entries) != 0 {
		t.Errorf("entries = %v, want none", got.Entries)
	}
}

func TestForwardRoundTrip(t *testing.T) {
	e := event.NewBuilder("Stock").Str("symbol", "ACME").Float("price", 9.5).ID(42).Build()
	got := roundTrip(t, Forward{Event: event.EncodeRaw(e)}).(Forward)
	if !got.Event.Event().Equal(e) || got.Event.EventID() != 42 {
		t.Errorf("event round trip: %s vs %s", got.Event.Event(), e)
	}
}

func TestForwardBatchRoundTrip(t *testing.T) {
	events := []*event.Event{
		event.NewBuilder("Stock").Str("symbol", "A").ID(1).Build(),
		event.NewBuilder("Stock").Str("symbol", "B").ID(2).Build(),
		event.NewBuilder("Bond").Int("rate", 3).ID(3).Build(),
	}
	raws := make([]*event.Raw, len(events))
	for i, e := range events {
		raws[i] = event.EncodeRaw(e)
	}
	got := roundTrip(t, ForwardBatch{Events: raws}).(ForwardBatch)
	if len(got.Events) != len(events) {
		t.Fatalf("events = %d, want %d", len(got.Events), len(events))
	}
	for i := range events {
		if !got.Events[i].Event().Equal(events[i]) || got.Events[i].EventID() != events[i].ID {
			t.Errorf("event %d mismatch: %s vs %s", i, got.Events[i].Event(), events[i])
		}
	}
}

// TestSubSetCountGuard rejects a frame whose claimed entry count exceeds
// what the frame could possibly hold.
func TestSubSetCountGuard(t *testing.T) {
	var body buffer
	body.uvarint(1 << 40) // absurd count, no entries
	frame := make([]byte, 5+len(body.b))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(body.b)))
	frame[4] = byte(TypeSubSet)
	copy(frame[5:], body.b)
	if _, err := ReadFrame(bytes.NewReader(frame)); err == nil {
		t.Fatal("absurd subset count accepted")
	}
}

// TestSubEntryHopGuard rejects implausible hop distances.
func TestSubEntryHopGuard(t *testing.T) {
	var body buffer
	body.uvarint(1 << 40) // hops
	var w buffer
	w.filter(filter.MustParseFilter(`x = 1`))
	body.b = append(body.b, w.b...)
	frame := make([]byte, 5+len(body.b))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(body.b)))
	frame[4] = byte(TypeSubUpdate)
	copy(frame[5:], body.b)
	_, err := ReadFrame(bytes.NewReader(frame))
	if err == nil || !strings.Contains(err.Error(), "hop count") {
		t.Fatalf("err = %v, want hop count rejection", err)
	}
}

// TestPeerFramesTruncated checks the decoder fails cleanly (no panic, an
// error) on every truncation prefix of each valid peer frame.
func TestPeerFramesTruncated(t *testing.T) {
	frames := []Message{
		PeerHello{ID: "B1", Addr: "h:1"},
		SubUpdate{Entry: SubEntry{Hops: 2, Filter: filter.MustParseFilter(`class = "Stock" && price < 10`)}},
		SubSet{Entries: []SubEntry{{Hops: 1, Filter: filter.MustParseFilter(`x = 1`)}}},
		Forward{Event: event.EncodeRaw(event.NewBuilder("T").Int("x", 1).ID(9).Build())},
		ForwardBatch{Events: []*event.Raw{event.EncodeRaw(event.NewBuilder("T").Int("x", 1).ID(9).Build())}},
	}
	for _, m := range frames {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
		whole := buf.Bytes()
		for cut := 5; cut < len(whole); cut++ {
			// Rewrite the header length to match the truncated body so the
			// decoder sees the short body rather than blocking on io.
			trunc := append([]byte(nil), whole[:cut]...)
			binary.BigEndian.PutUint32(trunc[:4], uint32(cut-5))
			if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
				t.Errorf("%T truncated to %d bytes decoded without error", m, cut)
			}
		}
	}
}
