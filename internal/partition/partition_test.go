package partition

import (
	"fmt"
	"testing"

	"eventsys/internal/event"
)

func replicas(n int) []Replica {
	out := make([]Replica, n)
	for i := range out {
		out[i] = Replica{ID: fmt.Sprintf("r%d", i), Addr: fmt.Sprintf("127.0.0.1:%d", 7001+i)}
	}
	return out
}

func TestMapDeterministicAndOrderIndependent(t *testing.T) {
	a := New(64, replicas(4))
	shuffled := []Replica{
		{ID: "r2", Addr: "127.0.0.1:7003"}, {ID: "r0", Addr: "127.0.0.1:7001"},
		{ID: "r3", Addr: "127.0.0.1:7004"}, {ID: "r1", Addr: "127.0.0.1:7002"},
	}
	b := New(64, shuffled)
	if a.Epoch != b.Epoch {
		t.Fatalf("epoch depends on input order: %x vs %x", a.Epoch, b.Epoch)
	}
	for p := 0; p < 64; p++ {
		if a.Owner(p) != b.Owner(p) {
			t.Fatalf("partition %d owner differs: %v vs %v", p, a.Owner(p), b.Owner(p))
		}
	}
}

func TestEpochChangesWithMembershipAndCount(t *testing.T) {
	base := New(64, replicas(4))
	if e := New(64, replicas(3)).Epoch; e == base.Epoch {
		t.Fatal("epoch unchanged after replica removal")
	}
	if e := New(32, replicas(4)).Epoch; e == base.Epoch {
		t.Fatal("epoch unchanged after partition-count change")
	}
	if base.Epoch == 0 {
		t.Fatal("epoch must never be zero")
	}
}

func TestRendezvousMinimalMovement(t *testing.T) {
	before := New(128, replicas(4))
	after := New(128, replicas(3)) // r3 removed
	moved := 0
	for p := 0; p < 128; p++ {
		ob, oa := before.Owner(p), after.Owner(p)
		if ob.ID != "r3" && ob != oa {
			t.Fatalf("partition %d moved from surviving replica %s to %s", p, ob.ID, oa.ID)
		}
		if ob.ID == "r3" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("removed replica owned nothing; distribution degenerate")
	}
}

func TestDistributionRoughlyBalanced(t *testing.T) {
	m := New(256, replicas(4))
	min, max := 256, 0
	for _, c := range m.Counts() {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == 0 || max > 4*min {
		t.Fatalf("partition ownership badly skewed: min=%d max=%d", min, max)
	}
}

func TestKeyOfUsesClassAndFirstAttr(t *testing.T) {
	a := event.NewBuilder("Tick").Str("topic", "alpha").Int("value", 1).Build()
	b := event.NewBuilder("Tick").Str("topic", "alpha").Int("value", 99).Build()
	c := event.NewBuilder("Tick").Str("topic", "beta").Int("value", 1).Build()
	if KeyOf(a) != KeyOf(b) {
		t.Fatal("events differing only in later attributes must share a key")
	}
	if KeyOf(a) == KeyOf(c) {
		t.Fatal("events with different leading attributes should (here) differ")
	}
	// The raw wire view must hash identically to the decoded event.
	if KeyOf(event.EncodeRaw(a)) != KeyOf(a) {
		t.Fatal("raw view and decoded event disagree on the key")
	}
}

func TestEmptyMapOwnsNothing(t *testing.T) {
	m := New(16, nil)
	if got := m.Owner(3); got != (Replica{}) {
		t.Fatalf("empty map returned owner %v", got)
	}
	if m.Owns("r0", 3) {
		t.Fatal("empty map claims ownership")
	}
}
