// Package partition divides the event space across broker replicas.
//
// The event space is hashed into a fixed number of partitions keyed on
// the event class plus the event's first (most general) attribute — the
// class alone is too coarse when one advertised class carries the whole
// workload, and the first attribute is the one advertisements list
// first, i.e. the most selective routing attribute the publisher
// declared. Each partition is assigned an owning replica by rendezvous
// (highest-random-weight) hashing over the participating replica set:
// adding or removing one replica moves only the partitions it gains or
// loses, never reshuffles the survivors.
//
// A Map is a pure function of (partition count, replica set), so every
// broker that has converged on the same link-state database derives the
// same Map without coordination — exactly like the spanning-forest
// election. The Epoch condenses that agreement into one comparable
// number carried on publish frames: publishers holding a different
// epoch are redirected with the current Map.
package partition

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"eventsys/internal/event"
)

// Replica identifies one participating broker replica.
type Replica struct {
	// ID is the broker identity (ServerConfig.ID).
	ID string
	// Addr is the broker's client listen address, carried so a redirect
	// can tell publishers where to dial.
	Addr string
}

// Map is an immutable partition→owner assignment. Build with New; the
// zero value means "unpartitioned" (every broker owns everything).
type Map struct {
	// Partitions is the fixed partition count (≥ 1).
	Partitions int
	// Replicas is the participating replica set, sorted by ID.
	Replicas []Replica
	// Epoch identifies this assignment: equal inputs yield equal
	// epochs on every broker, and any change to the partition count or
	// replica set changes it. Never zero (zero on the wire means "no
	// epoch": an unpartitioned or not-yet-redirected publisher).
	Epoch uint64
	// owners[p] indexes Replicas with partition p's owner.
	owners []int
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// New builds the assignment of partitions to the given replicas.
// Replicas are deduplicated by ID and sorted; a partition count below 1
// is raised to 1. With no replicas the Map is still valid but owns
// nothing (Owner returns the zero Replica).
func New(partitions int, replicas []Replica) *Map {
	if partitions < 1 {
		partitions = 1
	}
	byID := make(map[string]Replica, len(replicas))
	for _, r := range replicas {
		if r.ID == "" {
			continue
		}
		byID[r.ID] = r
	}
	sorted := make([]Replica, 0, len(byID))
	for _, r := range byID {
		sorted = append(sorted, r)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })

	m := &Map{Partitions: partitions, Replicas: sorted, owners: make([]int, partitions)}
	for p := 0; p < partitions; p++ {
		best, bestScore := -1, uint64(0)
		for i, r := range sorted {
			score := fnvString(fnvUint64(fnvOffset64, uint64(p)), r.ID)
			if best < 0 || score > bestScore || (score == bestScore && r.ID < sorted[best].ID) {
				best, bestScore = i, score
			}
		}
		m.owners[p] = best
	}

	h := fnvUint64(fnvOffset64, uint64(partitions))
	for _, r := range sorted {
		h = fnvString(h, r.ID)
		h = fnvString(h, "\x00")
		h = fnvString(h, r.Addr)
		h = fnvString(h, "\x01")
	}
	if h == 0 {
		h = 1
	}
	m.Epoch = h
	return m
}

// KeyOf hashes an event into the partition key space: the class plus
// the first attribute's name and value. Events of one class that differ
// only in later attributes land in the same partition, preserving
// per-source order for any subscription keyed on the leading attribute.
// The value is hashed as (kind, payload) rather than its rendered
// literal, keeping the per-publish partition decision allocation-free
// (BenchmarkPartitionedFanIn gates this).
func KeyOf(e event.View) uint64 {
	h := fnvString(fnvOffset64, e.Class())
	if e.NumAttrs() > 0 {
		name, v := e.AttrAt(0)
		h = fnvString(h, "\x00")
		h = fnvString(h, name)
		h = fnvString(h, "\x00")
		h = fnvUint64(h, uint64(v.Kind()))
		if v.Kind() == event.KindString {
			h = fnvString(h, v.Str())
		} else {
			h = fnvUint64(h, math.Float64bits(v.Num()))
		}
	}
	return h
}

// PartitionOf maps a key to its partition index.
func (m *Map) PartitionOf(key uint64) int {
	if m == nil || m.Partitions <= 1 {
		return 0
	}
	return int(key % uint64(m.Partitions))
}

// Owner returns partition p's owning replica; the zero Replica when the
// map has no replicas or p is out of range.
func (m *Map) Owner(p int) Replica {
	if m == nil || p < 0 || p >= len(m.owners) || m.owners[p] < 0 {
		return Replica{}
	}
	return m.Replicas[m.owners[p]]
}

// OwnerOf returns the replica owning an event's partition.
func (m *Map) OwnerOf(e event.View) Replica {
	return m.Owner(m.PartitionOf(KeyOf(e)))
}

// Owns reports whether the replica with the given ID owns partition p.
// An empty map (no replicas) owns nothing; callers treat that as
// "unpartitioned" and accept everything.
func (m *Map) Owns(id string, p int) bool {
	return m.Owner(p).ID == id
}

// Counts returns the number of partitions owned per replica, in
// Replicas order — the load-skew view.
func (m *Map) Counts() []int {
	if m == nil {
		return nil
	}
	counts := make([]int, len(m.Replicas))
	for _, o := range m.owners {
		if o >= 0 {
			counts[o]++
		}
	}
	return counts
}

// String renders the map for logs: epoch, partition count, owners.
func (m *Map) String() string {
	if m == nil {
		return "partition.Map(nil)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "epoch=%x partitions=%d replicas=[", m.Epoch, m.Partitions)
	for i, r := range m.Replicas {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(r.ID)
	}
	b.WriteByte(']')
	return b.String()
}
