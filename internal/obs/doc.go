// Package obs is the system's observability layer: it aggregates every
// stats surface the system already produces — per-node metrics.NodeStats
// counters (the inputs of the paper's LC/RLC/MR), flow.Snapshot queue
// gauges, federation PeerLinkStats, durable-store store.Stats — into one
// Registry and serves it in Prometheus text exposition format
// (text/plain; version=0.0.4) over an opt-in HTTP listener, alongside
// /healthz, /readyz, net/http/pprof, and a /debug/status JSON
// introspection endpoint.
//
// The package is dependency-free by design: the exposition writer is
// hand-rolled (no Prometheus client library), histograms are fixed-bucket
// atomic counters, and the hop-latency Tracer has an atomic no-op fast
// path so a broker built with tracing disabled pays one atomic load per
// frame and nothing else (pinned by BenchmarkForwardPath and the CI
// bench gate).
//
// # Exposition model
//
// Sources register with Registry.Register and are called at scrape time
// with a MetricWriter. A source adds samples to named families; the
// writer groups samples of one family together even when several sources
// (e.g. two brokers in one test process) contribute to it, so the output
// is always well-formed exposition. ValidateExposition is the in-repo
// conformance checker used by tests and the CI endpoint smoke job.
//
// # Hop-level latency tracing
//
// When tracing is enabled, inbound events are stamped on arrival (the
// publish stamp) and the stamp travels with the in-process event view
// (event.Raw / event.Event) through the pipeline. Each stage then
// records the elapsed time since arrival into a fixed-bucket histogram:
//
//	publish ──► match ──────► forward ─────► deliver
//	 stamp      HopMatch      HopForward     HopDeliver
//	            (matched in   (enqueued to   (written to the
//	            a table pass) an outbound    socket / handed to
//	                          queue)         the handler)
//
// The three series are cumulative-since-arrival, so per-stage deltas are
// derivable by subtraction, and the deliver series is the broker's
// residence time end to end.
package obs
