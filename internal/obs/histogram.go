package obs

import (
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are the fixed upper bounds (seconds) of the
// hop-latency histograms: 10µs to 10s, roughly ×2.5 per step. Fixed
// buckets keep Observe allocation-free and branch-cheap — one linear
// scan over 13 bounds — and make scrapes mergeable across brokers.
var DefaultLatencyBuckets = []float64{
	10e-6, 25e-6, 100e-6, 250e-6,
	1e-3, 2.5e-3, 10e-3, 25e-3,
	100e-3, 250e-3, 1, 2.5, 10,
}

// Histogram is a fixed-bucket cumulative histogram with atomic counters:
// Observe is lock-free and safe from any goroutine (writer loops,
// subscriber runtimes and the core all record into the same instance).
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64
	sumNS  atomic.Int64 // total observed duration, nanoseconds
	count  atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending upper bounds
// (seconds). Nil bounds use DefaultLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for i < len(h.bounds) && sec > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot returns a point-in-time copy for exposition. Counts are
// per-bucket (non-cumulative); MetricWriter.Histogram accumulates them
// into the cumulative _bucket series the text format requires.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    time.Duration(h.sumNS.Load()).Seconds(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is an immutable snapshot of a Histogram: per-bucket
// counts (Counts[len(Bounds)] is the overflow bucket) and the sum of
// observations in seconds.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
}
