package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a Prometheus metric family type.
type Kind string

const (
	// KindCounter is a monotonically increasing value.
	KindCounter Kind = "counter"
	// KindGauge is a value that can go up and down.
	KindGauge Kind = "gauge"
	// KindHistogram is a fixed-bucket cumulative distribution.
	KindHistogram Kind = "histogram"
)

// Source contributes samples to a scrape. Sources run under the
// registry's lock, once per scrape, and must be fast and non-blocking:
// read atomic counters and gauges, never take a round-trip through a
// core goroutine (a Block-policy stall must not wedge /metrics).
type Source func(w *MetricWriter)

// StatusSource contributes one named section to the /debug/status JSON
// introspection document. The returned value is marshaled with
// encoding/json.
type StatusSource func() any

// Registry aggregates metric sources and serves them as one coherent
// exposition. The zero value is not ready; use NewRegistry. A Registry
// is safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	sources []Source
	status  []statusEntry

	healthy atomic.Bool
	ready   atomic.Bool
}

type statusEntry struct {
	name string
	fn   StatusSource
}

// NewRegistry returns an empty registry, healthy and ready.
func NewRegistry() *Registry {
	r := &Registry{}
	r.healthy.Store(true)
	r.ready.Store(true)
	return r
}

// Register adds a metric source. Sources are invoked in registration
// order on every scrape.
func (r *Registry) Register(src Source) {
	r.mu.Lock()
	r.sources = append(r.sources, src)
	r.mu.Unlock()
}

// RegisterStatus adds a named section to the /debug/status document.
// Registering the same name twice replaces the earlier section.
func (r *Registry) RegisterStatus(name string, fn StatusSource) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.status {
		if r.status[i].name == name {
			r.status[i].fn = fn
			return
		}
	}
	r.status = append(r.status, statusEntry{name: name, fn: fn})
}

// SetHealthy flips the /healthz verdict: true serves 200, false 503.
// Brokers flip it false first thing on shutdown so load balancers and
// scrapers see the drain before the listener goes away.
func (r *Registry) SetHealthy(ok bool) { r.healthy.Store(ok) }

// Healthy reports the current /healthz verdict.
func (r *Registry) Healthy() bool { return r.healthy.Load() }

// SetReady flips the /readyz verdict.
func (r *Registry) SetReady(ok bool) { r.ready.Store(ok) }

// Ready reports the current /readyz verdict.
func (r *Registry) Ready() bool { return r.ready.Load() }

// WriteMetrics runs every source and writes the merged exposition to w.
// Samples are grouped by family (several sources may contribute to one
// family), families are emitted in name order, and the output conforms
// to the Prometheus text format, version 0.0.4.
func (r *Registry) WriteMetrics(w io.Writer) error {
	mw := NewMetricWriter()
	r.mu.Lock()
	sources := append([]Source(nil), r.sources...)
	r.mu.Unlock()
	for _, src := range sources {
		src(mw)
	}
	return mw.Render(w)
}

// statusSections snapshots the registered status sources (for the HTTP
// handler).
func (r *Registry) statusSections() []statusEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]statusEntry(nil), r.status...)
}

// family accumulates the samples of one metric family across sources.
type family struct {
	name    string
	help    string
	kind    Kind
	samples []sample
}

// sample is one exposition line: an optional suffix on the family name
// (histograms use _bucket/_sum/_count), label pairs, and the value.
type sample struct {
	suffix string
	labels []string // alternating key, value
	value  float64
}

// MetricWriter accumulates samples into families and renders the merged
// exposition. Not safe for concurrent use; each scrape builds its own.
type MetricWriter struct {
	families map[string]*family
	err      error
}

// NewMetricWriter returns an empty writer. Registry scrapes build one
// per scrape; tests may drive one directly.
func NewMetricWriter() *MetricWriter {
	return &MetricWriter{families: make(map[string]*family)}
}

// Err returns the first accumulation error (family redefined with a
// different type, odd label list, invalid name). The registry surfaces
// it as a scrape failure rather than emitting a malformed exposition.
func (mw *MetricWriter) Err() error { return mw.err }

func (mw *MetricWriter) fail(format string, args ...any) {
	if mw.err == nil {
		mw.err = fmt.Errorf(format, args...)
	}
}

// fam returns (creating or checking) the named family.
func (mw *MetricWriter) fam(name, help string, kind Kind) *family {
	if !validMetricName(name) {
		mw.fail("obs: invalid metric name %q", name)
		return nil
	}
	f, ok := mw.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		mw.families[name] = f
		return f
	}
	if f.kind != kind {
		mw.fail("obs: family %s redefined as %s (was %s)", name, kind, f.kind)
		return nil
	}
	return f
}

// checkLabels validates an alternating key/value label list.
func (mw *MetricWriter) checkLabels(name string, labels []string) bool {
	if len(labels)%2 != 0 {
		mw.fail("obs: family %s: odd label list", name)
		return false
	}
	for i := 0; i < len(labels); i += 2 {
		if !validLabelName(labels[i]) {
			mw.fail("obs: family %s: invalid label name %q", name, labels[i])
			return false
		}
	}
	return true
}

// Counter adds one sample to a counter family. labels alternate
// key, value.
func (mw *MetricWriter) Counter(name, help string, value float64, labels ...string) {
	mw.add(name, help, KindCounter, value, labels)
}

// Gauge adds one sample to a gauge family.
func (mw *MetricWriter) Gauge(name, help string, value float64, labels ...string) {
	mw.add(name, help, KindGauge, value, labels)
}

func (mw *MetricWriter) add(name, help string, kind Kind, value float64, labels []string) {
	f := mw.fam(name, help, kind)
	if f == nil || !mw.checkLabels(name, labels) {
		return
	}
	f.samples = append(f.samples, sample{labels: labels, value: value})
}

// Histogram adds one observation set to a histogram family: cumulative
// _bucket series per upper bound plus +Inf, _sum and _count.
func (mw *MetricWriter) Histogram(name, help string, h HistogramSnapshot, labels ...string) {
	f := mw.fam(name, help, KindHistogram)
	if f == nil || !mw.checkLabels(name, labels) {
		return
	}
	cum := uint64(0)
	for i, ub := range h.Bounds {
		cum += h.Counts[i]
		bl := append(append([]string(nil), labels...), "le", formatFloat(ub))
		f.samples = append(f.samples, sample{suffix: "_bucket", labels: bl, value: float64(cum)})
	}
	cum += h.Counts[len(h.Bounds)]
	bl := append(append([]string(nil), labels...), "le", "+Inf")
	f.samples = append(f.samples, sample{suffix: "_bucket", labels: bl, value: float64(cum)})
	f.samples = append(f.samples, sample{suffix: "_sum", labels: labels, value: h.Sum})
	f.samples = append(f.samples, sample{suffix: "_count", labels: labels, value: float64(cum)})
}

// Render writes the accumulated families in name order.
func (mw *MetricWriter) Render(w io.Writer) error {
	if mw.err != nil {
		return mw.err
	}
	names := make([]string, 0, len(mw.families))
	for name := range mw.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := mw.families[name]
		b.Reset()
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(string(f.kind))
		b.WriteByte('\n')
		for _, s := range f.samples {
			b.WriteString(f.name)
			b.WriteString(s.suffix)
			if len(s.labels) > 0 {
				b.WriteByte('{')
				for i := 0; i < len(s.labels); i += 2 {
					if i > 0 {
						b.WriteByte(',')
					}
					b.WriteString(s.labels[i])
					b.WriteString(`="`)
					b.WriteString(escapeLabelValue(s.labels[i+1]))
					b.WriteByte('"')
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatFloat(s.value))
			b.WriteByte('\n')
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a sample value: integral values print without an
// exponent or decimal point (counters stay grep-able), the rest use the
// shortest round-trip form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v >= -1e15 && v <= 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue escapes backslash, double-quote and newline, as the
// text format requires inside label values.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// validMetricName reports whether name matches the Prometheus metric
// name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
