package obs

import (
	"sync/atomic"
	"time"
)

// traceBase anchors trace stamps: a stamp is nanoseconds since this
// process-wide instant, read through the monotonic clock, so one int64
// travels with the event instead of a 24-byte time.Time.
var traceBase = time.Now()

// Nanotime returns the current trace clock reading (monotonic
// nanoseconds since process start, never 0 in practice).
func Nanotime() int64 { return int64(time.Since(traceBase)) }

// Hop names a traced pipeline stage. Each stage's histogram records the
// elapsed time since the event's arrival (publish) stamp, so the series
// are cumulative along the pipeline and per-stage deltas are derivable.
type Hop uint8

const (
	// HopMatch: arrival → matched against the subscription table.
	HopMatch Hop = iota
	// HopForward: arrival → enqueued to an outbound queue (a child
	// broker, subscriber connection, or federation peer link).
	HopForward
	// HopDeliver: arrival → written to the destination socket, or
	// handed to an in-process subscriber handler.
	HopDeliver
	numHops
)

// String returns the hop's label value.
func (h Hop) String() string {
	switch h {
	case HopMatch:
		return "match"
	case HopForward:
		return "forward"
	case HopDeliver:
		return "deliver"
	}
	return "unknown"
}

// Tracer records hop-level event latencies into fixed-bucket
// histograms. The zero of usefulness is a nil *Tracer or a disabled
// one: Stamp returns 0 and Observe is a no-op behind one atomic load —
// the fast path the bench gate pins at ~zero cost.
type Tracer struct {
	enabled atomic.Bool
	hists   [numHops]*Histogram
}

// NewTracer returns a tracer with default latency buckets, disabled.
func NewTracer() *Tracer {
	t := &Tracer{}
	for i := range t.hists {
		t.hists[i] = NewHistogram(nil)
	}
	return t
}

// Enable turns recording on or off at runtime.
func (t *Tracer) Enable(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports whether the tracer records. Nil receivers report
// false, so call sites need no nil checks.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Stamp returns an arrival stamp for an event entering the pipeline, or
// 0 when tracing is disabled (the no-op fast path).
func (t *Tracer) Stamp() int64 {
	if !t.Enabled() {
		return 0
	}
	return Nanotime()
}

// Observe records the elapsed time since stamp into the hop's
// histogram. A zero stamp (tracing was off when the event arrived, or
// the event predates the tracer) records nothing.
func (t *Tracer) Observe(hop Hop, stamp int64) {
	if stamp == 0 || !t.Enabled() {
		return
	}
	d := Nanotime() - stamp
	if d < 0 {
		d = 0
	}
	t.hists[hop].Observe(time.Duration(d))
}

// Hist returns the hop's histogram (tests and exposition).
func (t *Tracer) Hist(hop Hop) *Histogram { return t.hists[hop] }

// Collect writes the tracer's histograms as one
// eventsys_hop_latency_seconds family, each hop a label. extra labels
// (e.g. "node", id) are prepended to every series.
func (t *Tracer) Collect(w *MetricWriter, labels ...string) {
	for hop := Hop(0); hop < numHops; hop++ {
		hl := append(append([]string(nil), labels...), "hop", hop.String())
		w.Histogram("eventsys_hop_latency_seconds",
			"Elapsed time from event arrival (publish stamp) to each pipeline stage.",
			t.hists[hop].Snapshot(), hl...)
	}
}
