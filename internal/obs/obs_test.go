package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// render drives a writer through fill and returns the exposition text,
// failing the test on accumulation or render errors.
func render(t *testing.T, fill func(w *MetricWriter)) string {
	t.Helper()
	mw := NewMetricWriter()
	fill(mw)
	var b strings.Builder
	if err := mw.Render(&b); err != nil {
		t.Fatalf("render: %v", err)
	}
	return b.String()
}

func TestWriterRendersSortedValidExposition(t *testing.T) {
	out := render(t, func(w *MetricWriter) {
		w.Counter("eventsys_z_total", "Last family.", 3, "node", "a")
		w.Gauge("eventsys_a_depth", "First family.", 7, "node", "a", "queue", "inlet")
		w.Counter("eventsys_z_total", "Last family.", 4, "node", "b")
	})
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("own output fails own validator: %v\n%s", err, out)
	}
	// Families render in name order, samples from several calls merge
	// under one TYPE header.
	if !strings.Contains(out, "# TYPE eventsys_a_depth gauge") ||
		!strings.Contains(out, "# TYPE eventsys_z_total counter") {
		t.Fatalf("missing TYPE lines:\n%s", out)
	}
	if strings.Index(out, "eventsys_a_depth") > strings.Index(out, "eventsys_z_total") {
		t.Fatalf("families not in name order:\n%s", out)
	}
	if got := strings.Count(out, "# TYPE eventsys_z_total"); got != 1 {
		t.Fatalf("counter family split across %d TYPE headers:\n%s", got, out)
	}
	if !strings.Contains(out, `eventsys_z_total{node="a"} 3`) ||
		!strings.Contains(out, `eventsys_z_total{node="b"} 4`) {
		t.Fatalf("samples missing:\n%s", out)
	}
}

func TestWriterEscapesLabelValuesAndHelp(t *testing.T) {
	out := render(t, func(w *MetricWriter) {
		w.Gauge("eventsys_esc", "help with \\ and\nnewline", 1,
			"path", "a\\b\"c\nd")
	})
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("escaped output invalid: %v\n%s", err, out)
	}
	if !strings.Contains(out, `path="a\\b\"c\nd"`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
	if !strings.Contains(out, `# HELP eventsys_esc help with \\ and\nnewline`) {
		t.Fatalf("help not escaped:\n%s", out)
	}
}

func TestWriterRejectsMalformedInput(t *testing.T) {
	cases := []struct {
		name string
		fill func(w *MetricWriter)
	}{
		{"kind conflict", func(w *MetricWriter) {
			w.Counter("eventsys_x", "h", 1)
			w.Gauge("eventsys_x", "h", 1)
		}},
		{"odd labels", func(w *MetricWriter) {
			w.Counter("eventsys_x", "h", 1, "node")
		}},
		{"bad metric name", func(w *MetricWriter) {
			w.Counter("1bad", "h", 1)
		}},
		{"bad label name", func(w *MetricWriter) {
			w.Counter("eventsys_x", "h", 1, "bad-label", "v")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mw := NewMetricWriter()
			tc.fill(mw)
			if mw.Err() == nil {
				t.Fatal("accumulation error not reported")
			}
			if err := mw.Render(io.Discard); err == nil {
				t.Fatal("render succeeded on poisoned writer")
			}
		})
	}
}

func TestHistogramBucketsAndSnapshot(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.1, 1})
	h.Observe(500 * time.Microsecond) // bucket 0 (le 0.001)
	h.Observe(50 * time.Millisecond)  // bucket 1 (le 0.1)
	h.Observe(50 * time.Millisecond)  // bucket 1
	h.Observe(5 * time.Second)        // overflow
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	s := h.Snapshot()
	want := []uint64{1, 2, 0, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("Counts = %v, want %v", s.Counts, want)
		}
	}
	wantSum := (500*time.Microsecond + 100*time.Millisecond + 5*time.Second).Seconds()
	if diff := s.Sum - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Sum = %v, want %v", s.Sum, wantSum)
	}

	// The rendered histogram must satisfy the validator's cumulative,
	// le-ordered, +Inf-terminated contract.
	out := render(t, func(w *MetricWriter) {
		w.Histogram("eventsys_h_seconds", "h", s, "node", "n1")
	})
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("histogram exposition invalid: %v\n%s", err, out)
	}
	if !strings.Contains(out, `eventsys_h_seconds_bucket{node="n1",le="+Inf"} 4`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, `eventsys_h_seconds_count{node="n1"} 4`) {
		t.Fatalf("missing _count:\n%s", out)
	}
}

func TestTracerDisabledAndNilAreNoOps(t *testing.T) {
	var nilT *Tracer
	if nilT.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	nilT.Enable(true) // must not panic
	if nilT.Stamp() != 0 {
		t.Fatal("nil tracer stamped")
	}

	tr := NewTracer()
	if tr.Enabled() {
		t.Fatal("new tracer starts enabled")
	}
	if s := tr.Stamp(); s != 0 {
		t.Fatalf("disabled Stamp = %d, want 0", s)
	}
	tr.Observe(HopMatch, Nanotime()) // disabled: dropped
	tr.Enable(true)
	tr.Observe(HopMatch, 0) // zero stamp: dropped
	if n := tr.Hist(HopMatch).Count(); n != 0 {
		t.Fatalf("no-op paths recorded %d observations", n)
	}

	stamp := tr.Stamp()
	if stamp == 0 {
		t.Fatal("enabled Stamp returned 0")
	}
	tr.Observe(HopMatch, stamp)
	tr.Observe(HopDeliver, stamp)
	if tr.Hist(HopMatch).Count() != 1 || tr.Hist(HopDeliver).Count() != 1 {
		t.Fatal("enabled observations not recorded")
	}

	out := render(t, func(w *MetricWriter) { tr.Collect(w, "node", "n1") })
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("tracer exposition invalid: %v\n%s", err, out)
	}
	for _, hop := range []string{"match", "forward", "deliver"} {
		if !strings.Contains(out, fmt.Sprintf(`hop="%s"`, hop)) {
			t.Fatalf("hop %s missing:\n%s", hop, out)
		}
	}
}

func TestValidatorCatchesViolations(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"sample before TYPE",
			"eventsys_x_total 1\n", "before its TYPE"},
		{"duplicate series",
			"# TYPE eventsys_x_total counter\neventsys_x_total{a=\"1\"} 1\neventsys_x_total{a=\"1\"} 2\n",
			"duplicate series"},
		{"interleaved families",
			"# TYPE a_total counter\na_total 1\n# TYPE b_total counter\nb_total 1\na_total{x=\"1\"} 2\n",
			"interleaved"},
		{"negative counter",
			"# TYPE eventsys_x_total counter\neventsys_x_total -1\n", "counter"},
		{"missing +Inf",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"+Inf"},
		{"non-cumulative buckets",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
			"cumulative"},
		{"count mismatch",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
			"_count"},
		{"missing sum",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n",
			"_sum"},
		{"bad label quoting",
			"# TYPE eventsys_x counter\neventsys_x{a=1} 1\n", "not quoted"},
		{"duplicate TYPE",
			"# TYPE a_total counter\n# TYPE a_total counter\na_total 1\n",
			"duplicate TYPE"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateExposition(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("accepted invalid exposition:\n%s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Register(func(w *MetricWriter) {
		w.Counter("eventsys_test_total", "Test counter.", 42, "node", "n1")
	})
	reg.RegisterStatus("test", func() any { return map[string]any{"answer": 42} })
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if err := ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics invalid: %v", err)
	}
	if !strings.Contains(body, `eventsys_test_total{node="n1"} 42`) {
		t.Fatalf("registered source missing:\n%s", body)
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz status %d while healthy", code)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz status %d while ready", code)
	}

	code, body = get("/debug/status")
	if code != http.StatusOK {
		t.Fatalf("/debug/status status %d", code)
	}
	var doc map[string]map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/status not JSON: %v\n%s", err, body)
	}
	if doc["test"]["answer"] != float64(42) {
		t.Fatalf("/debug/status section wrong: %v", doc)
	}

	// Health flips deterministically on SetHealthy — the same switch
	// shutdown paths throw before draining.
	reg.SetHealthy(false)
	if code, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz status %d after SetHealthy(false), want 503", code)
	}
	reg.SetReady(false)
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz status %d after SetReady(false), want 503", code)
	}
	// Metrics keep serving through the drain window.
	if code, _ := get("/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics status %d during drain", code)
	}
}
