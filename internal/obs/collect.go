package obs

import (
	"strconv"

	"eventsys/internal/flow"
	"eventsys/internal/metrics"
	"eventsys/internal/store"
)

// This file maps the system's existing stats surfaces onto exposition
// families. Every family carries the eventsys_ prefix and a node label,
// so several brokers (or a whole in-process hierarchy) merge into one
// scrape. The conservation identity across the node families —
// published == delivered + dropped + stored — is documented as PromQL
// in docs/ARCHITECTURE.md.

// CollectNodeStats writes one node's counters: the LC/RLC/MR inputs
// (filters, received, matched), the delivery ledger (forwarded,
// delivered, reason-labeled drops, store traffic), flow-control and
// federation-plane activity, and the derived per-node LC and MR gauges.
func CollectNodeStats(w *MetricWriter, stats ...metrics.NodeStats) {
	for _, s := range stats {
		l := []string{"node", s.NodeID, "stage", strconv.Itoa(s.Stage)}
		w.Gauge("eventsys_node_filters",
			"Filters stored at the node (the paper's LC multiplier).", float64(s.Filters), l...)
		w.Counter("eventsys_node_received_events_total",
			"Events received for filtering.", float64(s.Received), l...)
		w.Counter("eventsys_node_matched_events_total",
			"Events that matched at least one local filter.", float64(s.Matched), l...)
		w.Counter("eventsys_node_forwarded_events_total",
			"Event copies forwarded to children.", float64(s.Forwarded), l...)
		w.Counter("eventsys_node_delivered_events_total",
			"Events delivered to local subscribers.", float64(s.Delivered), l...)
		for r := metrics.DropReason(0); r < metrics.NumDropReasons; r++ {
			rl := append(append([]string(nil), l...), "reason", r.String())
			w.Counter("eventsys_node_dropped_events_total",
				"Events dropped, by reason; reasons sum to the node's total drops.",
				float64(s.DroppedBy[r]), rl...)
		}
		w.Counter("eventsys_node_store_appended_events_total",
			"Events appended to the durable store for this node's subscriptions.",
			float64(s.StoreAppended), l...)
		w.Counter("eventsys_node_store_replayed_events_total",
			"Events replayed from the durable store.", float64(s.StoreReplayed), l...)
		w.Counter("eventsys_node_store_bytes_total",
			"Bytes written to the durable store.", float64(s.StoredBytes), l...)
		w.Counter("eventsys_node_flow_stalls_total",
			"Times a Block-policy queue made a producer wait.", float64(s.Stalled), l...)
		w.Counter("eventsys_node_spilled_events_total",
			"Events diverted to backlog storage under SpillToStore.", float64(s.Spilled), l...)
		w.Counter("eventsys_node_credit_granted_total",
			"Event credits granted to senders.", float64(s.CreditGranted), l...)
		w.Counter("eventsys_node_credit_waits_total",
			"Times an outbound writer ran out of credit and waited.", float64(s.CreditWaits), l...)
		w.Counter("eventsys_node_match_batches_total",
			"Batched matching passes over the node's table.", float64(s.BatchesMatched), l...)
		w.Counter("eventsys_node_match_batch_events_total",
			"Events carried by matched batches (ratio to passes = avg coalescing).",
			float64(s.BatchSizeSum), l...)
		w.Counter("eventsys_node_peer_propagated_total",
			"Subscription entries propagated to federation peer links.",
			float64(s.PeerPropagated), l...)
		w.Counter("eventsys_node_peer_suppressed_total",
			"Subscription entries pruned by covering instead of propagated.",
			float64(s.PeerSuppressed), l...)
		w.Counter("eventsys_node_peer_forwarded_events_total",
			"Events forwarded to federation peer links.", float64(s.PeerForwarded), l...)
		w.Counter("eventsys_node_peer_resyncs_total",
			"Peer-link SubSet resyncs.", float64(s.PeerResyncs), l...)
		w.Gauge("eventsys_node_lc",
			"Local cost: received x filters (paper Section 5.1).", s.LC(), l...)
		w.Gauge("eventsys_node_matching_rate",
			"Matching rate: matched / received (0 when idle).", s.MR(), l...)
	}
}

// CollectFlow writes one node's bounded-queue gauges, one series set per
// queue (core inlet, outbound connection queues, mailboxes, delivery
// queues).
func CollectFlow(w *MetricWriter, node string, qs []flow.Snapshot) {
	for _, q := range qs {
		l := []string{"node", node, "queue", q.Name}
		w.Gauge("eventsys_queue_depth",
			"Current queue occupancy.", float64(q.Depth), l...)
		w.Gauge("eventsys_queue_window",
			"Queue policy bound.", float64(q.Window), l...)
		w.Gauge("eventsys_queue_depth_max",
			"Queue high-water mark.", float64(q.DepthMax), l...)
		w.Counter("eventsys_queue_enqueued_total",
			"Items admitted to the queue.", float64(q.Enqueued), l...)
		w.Counter("eventsys_queue_dropped_total",
			"Items discarded by the queue's policy.", float64(q.Dropped), l...)
		w.Counter("eventsys_queue_spilled_total",
			"Items handed to the queue's spill target.", float64(q.Spilled), l...)
		w.Counter("eventsys_queue_stalls_total",
			"Block pushes that had to wait for space.", float64(q.Stalls), l...)
	}
}

// CollectStore writes the durable store's counters.
func CollectStore(w *MetricWriter, node string, st store.Stats) {
	l := []string{"node", node}
	w.Gauge("eventsys_store_segments",
		"Retained log segments.", float64(st.Segments), l...)
	w.Gauge("eventsys_store_bytes",
		"Retained log size in bytes.", float64(st.Bytes), l...)
	w.Counter("eventsys_store_appended_records_total",
		"Records appended since open.", float64(st.Appended), l...)
	w.Counter("eventsys_store_replayed_records_total",
		"Records replayed since open.", float64(st.Replayed), l...)
	w.Counter("eventsys_store_evicted_records_total",
		"Unconsumed records lost to the retention bound.", float64(st.Evicted), l...)
	w.Gauge("eventsys_store_pending_records",
		"Total backlog over all cursors.", float64(st.Pending), l...)
}
