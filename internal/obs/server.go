package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is a running observability HTTP listener. It serves:
//
//	/metrics       Prometheus text exposition of the Registry
//	/healthz       200 while Registry.Healthy, 503 after shutdown flips it
//	/readyz        200 while Registry.Ready
//	/debug/status  JSON introspection: every registered status section
//	/debug/pprof/  the standard runtime profiles
//
// One Server serves one Registry; several subsystems (broker, store,
// tracer) register sources on the shared registry instead of each
// binding a port.
type Server struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server

	closeOnce sync.Once
	closeErr  error
}

// Serve binds addr (":0" for ephemeral — read it back with Addr) and
// serves the registry's endpoints until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	if reg == nil {
		return nil, fmt.Errorf("obs: nil registry")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{reg: reg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/debug/status", s.handleStatus)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener. It does not flip health — callers flip
// Registry.SetHealthy(false) before tearing the system down, so the
// drain is visible to scrapers while the broker still winds down.
func (s *Server) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.srv.Close() })
	return s.closeErr
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WriteMetrics(w); err != nil {
		// Headers are out; all we can do is abort the body so the
		// scraper sees a broken response instead of a silently
		// truncated exposition.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.reg.Healthy() {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
		return
	}
	http.Error(w, "shutting down", http.StatusServiceUnavailable)
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.reg.Ready() {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
		return
	}
	http.Error(w, "not ready", http.StatusServiceUnavailable)
}

// handleStatus renders every registered status section as one JSON
// document — the runtime introspection endpoint (stats structs exactly
// as the Go API reports them).
func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	doc := make(map[string]any)
	for _, e := range s.reg.statusSections() {
		doc[e.name] = e.fn()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
