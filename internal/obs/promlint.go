package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition checks r for conformance with the Prometheus text
// exposition format (version 0.0.4) plus the repo's own hygiene rules,
// and returns the first violation found. It is the shared validator
// behind the golden federation scrape test and the CI endpoint smoke
// job (scripts/promcheck).
//
// Checked per family: valid metric and label names, TYPE known and
// declared before any sample, one TYPE/HELP line each, all samples
// contiguous (no family interleaving), no duplicate series, counter
// values finite and non-negative. Histogram families must carry, per
// label set, a le="+Inf" bucket, cumulative non-decreasing buckets in
// ascending le order, and _sum/_count series with _count equal to the
// +Inf bucket.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	type famState struct {
		kind     Kind
		hasType  bool
		hasHelp  bool
		closed   bool // a later family started; reappearing = interleaved
		series   map[string]struct{}
		hist     map[string][]bucket // histograms: base labels -> buckets
		histSum  map[string]bool
		histCnt  map[string]float64
		histCntV map[string]bool
	}
	fams := make(map[string]*famState)
	var current string
	lineNo := 0

	get := func(name string) *famState {
		f, ok := fams[name]
		if !ok {
			f = &famState{
				series:   make(map[string]struct{}),
				hist:     make(map[string][]bucket),
				histSum:  make(map[string]bool),
				histCnt:  make(map[string]float64),
				histCntV: make(map[string]bool),
			}
			fams[name] = f
		}
		return f
	}
	enter := func(name string) *famState {
		f := get(name)
		if current != name {
			if cur, ok := fams[current]; ok && current != "" {
				cur.closed = true
			}
			current = name
		}
		return f
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				name := fields[2]
				if !validMetricName(name) {
					return fmt.Errorf("line %d: invalid metric name %q in %s", lineNo, name, fields[1])
				}
				f := enter(name)
				if f.closed {
					return fmt.Errorf("line %d: family %s reappears after another family (interleaved)", lineNo, name)
				}
				if fields[1] == "TYPE" {
					if f.hasType {
						return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
					}
					if len(f.series) > 0 {
						return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
					}
					if len(fields) < 4 {
						return fmt.Errorf("line %d: TYPE line for %s missing type", lineNo, name)
					}
					switch Kind(fields[3]) {
					case KindCounter, KindGauge, KindHistogram, "summary", "untyped":
						f.kind = Kind(fields[3])
					default:
						return fmt.Errorf("line %d: unknown type %q for %s", lineNo, fields[3], name)
					}
					f.hasType = true
				} else {
					if f.hasHelp {
						return fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
					}
					f.hasHelp = true
				}
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		base, suffix := name, ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, sfx)
			if trimmed != name {
				if bf, ok := fams[trimmed]; ok && bf.kind == KindHistogram {
					base, suffix = trimmed, sfx
				}
				break
			}
		}
		f := enter(base)
		if f.closed {
			return fmt.Errorf("line %d: family %s reappears after another family (interleaved)", lineNo, base)
		}
		if !f.hasType {
			return fmt.Errorf("line %d: sample for %s before its TYPE line", lineNo, base)
		}
		key := name + "|" + canonicalLabels(labels, "")
		if _, dup := f.series[key]; dup {
			return fmt.Errorf("line %d: duplicate series %s{%s}", lineNo, name, canonicalLabels(labels, ""))
		}
		f.series[key] = struct{}{}
		if f.kind == KindCounter && (value < 0 || math.IsNaN(value) || math.IsInf(value, 0)) {
			return fmt.Errorf("line %d: counter %s has non-monotonic-capable value %v", lineNo, name, value)
		}
		if f.kind == KindHistogram {
			bk := canonicalLabels(labels, "le")
			switch suffix {
			case "_bucket":
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: histogram bucket %s missing le label", lineNo, name)
				}
				ub, err := parseLE(le)
				if err != nil {
					return fmt.Errorf("line %d: %w", lineNo, err)
				}
				f.hist[bk] = append(f.hist[bk], bucket{ub: ub, count: value})
			case "_sum":
				f.histSum[bk] = true
			case "_count":
				f.histCnt[bk] = value
				f.histCntV[bk] = true
			default:
				return fmt.Errorf("line %d: histogram family %s has plain sample %s", lineNo, base, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	// Cross-series histogram coherence.
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if f.kind != KindHistogram {
			continue
		}
		for bk, buckets := range f.hist {
			if !sort.SliceIsSorted(buckets, func(i, j int) bool { return buckets[i].ub < buckets[j].ub }) {
				return fmt.Errorf("histogram %s{%s}: buckets out of le order", n, bk)
			}
			last := buckets[len(buckets)-1]
			if !math.IsInf(last.ub, 1) {
				return fmt.Errorf("histogram %s{%s}: missing le=\"+Inf\" bucket", n, bk)
			}
			for i := 1; i < len(buckets); i++ {
				if buckets[i].count < buckets[i-1].count {
					return fmt.Errorf("histogram %s{%s}: bucket counts not cumulative", n, bk)
				}
			}
			if !f.histSum[bk] {
				return fmt.Errorf("histogram %s{%s}: missing _sum", n, bk)
			}
			if !f.histCntV[bk] {
				return fmt.Errorf("histogram %s{%s}: missing _count", n, bk)
			}
			if f.histCnt[bk] != last.count {
				return fmt.Errorf("histogram %s{%s}: _count %v != +Inf bucket %v", n, bk, f.histCnt[bk], last.count)
			}
		}
		for bk := range f.histCntV {
			if _, ok := f.hist[bk]; !ok {
				return fmt.Errorf("histogram %s{%s}: _count without buckets", n, bk)
			}
		}
	}
	return nil
}

type bucket struct {
	ub    float64
	count float64
}

// parseLE parses a le label value (+Inf allowed).
func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le value %q", s)
	}
	return v, nil
}

// canonicalLabels renders a label map sorted by key, excluding skip —
// the series-identity (and histogram base-labels) key.
func canonicalLabels(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == skip {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString("=")
		b.WriteString(labels[k])
	}
	return b.String()
}

// parseSample parses one sample line: name[{labels}] value [timestamp].
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = make(map[string]string)
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	if i < len(line) && line[i] == '{' {
		i++
		for {
			for i < len(line) && line[i] == ',' {
				i++
			}
			if i < len(line) && line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && line[j] != '=' {
				j++
			}
			if j >= len(line) {
				return "", nil, 0, fmt.Errorf("unterminated label list")
			}
			lname := line[i:j]
			if !validLabelName(lname) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", lname)
			}
			if j+1 >= len(line) || line[j+1] != '"' {
				return "", nil, 0, fmt.Errorf("label %s: value not quoted", lname)
			}
			lval, rest, perr := parseQuoted(line[j+1:])
			if perr != nil {
				return "", nil, 0, fmt.Errorf("label %s: %w", lname, perr)
			}
			if _, dup := labels[lname]; dup {
				return "", nil, 0, fmt.Errorf("duplicate label %s", lname)
			}
			labels[lname] = lval
			i = len(line) - len(rest)
		}
	}
	for i < len(line) && line[i] == ' ' {
		i++
	}
	fields := strings.Fields(line[i:])
	if len(fields) == 0 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("expected value (and optional timestamp), got %q", line[i:])
	}
	value, err = parsePromValue(fields[0])
	if err != nil {
		return "", nil, 0, err
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// parsePromValue parses a sample value (Go float syntax plus +Inf/-Inf/
// NaN spellings).
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	return v, nil
}

// parseQuoted consumes a double-quoted, backslash-escaped string at the
// start of s (s begins with the opening quote) and returns the decoded
// value plus the remainder after the closing quote.
func parseQuoted(s string) (string, string, error) {
	if len(s) == 0 || s[0] != '"' {
		return "", "", fmt.Errorf("missing opening quote")
	}
	var b strings.Builder
	i := 1
	for i < len(s) {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("bad escape \\%c", s[i+1])
			}
			i += 2
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
			i++
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}
