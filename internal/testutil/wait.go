// Package testutil holds shared helpers for the repository's tests.
package testutil

import (
	"testing"
	"time"
)

// WaitTimeout is the default WaitUntil deadline: generous enough for a
// loaded CI runner, short enough that a hung condition fails the test
// rather than the suite.
const WaitTimeout = 5 * time.Second

// WaitUntil polls cond until it holds, failing the test after the
// default deadline. It replaces bare time.Sleep synchronization: sleeps
// are either too short (flaky under load) or too long (slow suites),
// while polling an observable condition is neither.
func WaitUntil(t testing.TB, what string, cond func() bool) {
	t.Helper()
	WaitUntilFor(t, WaitTimeout, what, cond)
}

// WaitUntilFor is WaitUntil with an explicit deadline, for soak-scale
// waits.
func WaitUntilFor(t testing.TB, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
