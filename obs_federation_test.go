package eventsys

import (
	"errors"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"eventsys/internal/obs"
)

// TestObservabilityFederationScrape is the golden scrape test: a live
// two-broker federation serving /metrics over HTTP, scraped like a
// Prometheus server would. It pins the exposition well-formed (via the
// in-repo validator), the node/flow/peer-link families present on both
// brokers, counters monotonic across publish rounds, hop histograms
// populated under load, and /healthz flipping on shutdown.
func TestObservabilityFederationScrape(t *testing.T) {
	a, err := ServeBroker(BrokerOptions{
		ID: "geneva", PeerMaxStage: 2, ObsAddr: "127.0.0.1:0", Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ServeBroker(BrokerOptions{
		ID: "zurich", PeerMaxStage: 2, Peers: []string{a.Addr()},
		ObsAddr: "127.0.0.1:0", Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	waitForCond(t, "peer link up", func() bool {
		for _, br := range []*Broker{a, b} {
			for _, ps := range br.PeerStats() {
				if ps.Up {
					return true
				}
			}
		}
		return false
	})

	pub, err := DialPublisher(a.Addr(), "ticker")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Advertise("Stock", "symbol", "price"); err != nil {
		t.Fatal(err)
	}
	waitForCond(t, "advertisement to flood", func() bool {
		return len(a.Advertised()) == 1 && len(b.Advertised()) == 1
	})

	var delivered atomic.Int64
	sub, err := DialSubscriber(b.Addr(), "bob", `class = "Stock" && price < 1000`,
		func(*Event) { delivered.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	waitForCond(t, "interest to propagate", func() bool {
		for _, ps := range a.PeerStats() {
			if ps.Interests > 0 {
				return true
			}
		}
		return false
	})

	publish := func(n int) {
		t.Helper()
		before := delivered.Load()
		for i := 0; i < n; i++ {
			e := NewEvent("Stock").Str("symbol", "ACME").Float("price", float64(i)).Build()
			if err := pub.Publish(e); err != nil {
				t.Fatal(err)
			}
		}
		waitForCond(t, "cross-broker deliveries", func() bool {
			return delivered.Load() >= before+int64(n)
		})
	}

	scrape := func(br *Broker) string {
		t.Helper()
		resp, err := http.Get("http://" + br.ObsAddr() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics status %d", resp.StatusCode)
		}
		if err := obs.ValidateExposition(strings.NewReader(string(body))); err != nil {
			t.Fatalf("broker %s: malformed exposition: %v", br.ObsAddr(), err)
		}
		return string(body)
	}

	publish(100)
	firstA, firstB := scrape(a), scrape(b)

	// Every stats surface shows up: node counters, flow queue gauges,
	// peer-link families, hop histograms.
	for _, want := range []string{
		"eventsys_node_received_events_total",
		"eventsys_node_lc",
		"eventsys_queue_depth",
		"eventsys_peer_link_up",
		"eventsys_peer_link_forwarded_events_total",
		"eventsys_hop_latency_seconds_bucket",
	} {
		for who, exp := range map[string]string{"geneva": firstA, "zurich": firstB} {
			if !strings.Contains(exp, want) {
				t.Errorf("broker %s: family %s missing from scrape", who, want)
			}
		}
	}

	publish(100)
	secondA := scrape(a)

	recv1 := scrapeSeries(t, firstA, "eventsys_node_received_events_total", `node="geneva"`)
	recv2 := scrapeSeries(t, secondA, "eventsys_node_received_events_total", `node="geneva"`)
	if recv2 < recv1 || recv2 < 200 {
		t.Fatalf("received counter not monotonic: %v then %v (published 200)", recv1, recv2)
	}
	if fwd := scrapeSeries(t, secondA, "eventsys_peer_link_forwarded_events_total", `peer="zurich"`); fwd < 200 {
		t.Errorf("peer link forwarded %v events to zurich, want >= 200", fwd)
	}
	if hops := scrapeSeries(t, secondA, "eventsys_hop_latency_seconds_count", `hop="match"`); hops <= 0 {
		t.Error("hop-latency histograms empty with tracing on")
	}

	// /healthz flips on shutdown. Broker.Close flips the registry
	// before stopping the listener, so a scrape can race either into a
	// 503 or a refused connection — both prove the flip preceded the
	// teardown; a 200 would be the bug.
	healthURL := "http://" + b.ObsAddr() + "/healthz"
	if resp, err := http.Get(healthURL); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/healthz status %d while up", resp.StatusCode)
		}
	}
	b.Close()
	if !b.ObsRegistry().Healthy() {
		// Registry verdict is deterministic even though the HTTP
		// listener's lifetime is not.
		t.Log("registry unhealthy after Close, as expected")
	} else {
		t.Fatal("registry still healthy after Close")
	}
	resp, err := http.Get(healthURL)
	switch {
	case err != nil:
		var opErr *net.OpError
		if !errors.As(err, &opErr) {
			t.Fatalf("/healthz after close: unexpected error %v", err)
		}
	case resp.StatusCode == http.StatusServiceUnavailable:
		resp.Body.Close()
	default:
		resp.Body.Close()
		t.Fatalf("/healthz status %d after Close, want 503 or refused", resp.StatusCode)
	}
}

// scrapeSeries sums the samples of name whose label block contains
// labelFrag.
func scrapeSeries(t *testing.T, exposition, name, labelFrag string) float64 {
	t.Helper()
	total, found := 0.0, false
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, name+"{") || !strings.Contains(line, labelFrag) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("series %s: bad value in %q", name, line)
		}
		total += v
		found = true
	}
	if !found {
		t.Fatalf("series %s{%s} absent from exposition", name, labelFrag)
	}
	return total
}

// TestObservabilitySystemFacade pins the single-process facade path:
// Options.ObsAddr serves the overlay's own stats, and System.Close
// flips health before draining.
func TestObservabilitySystemFacade(t *testing.T) {
	sys, err := New(Options{ObsAddr: "127.0.0.1:0", Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Advertise("Tick", "n"); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{}, 64)
	if _, err := sys.Subscribe("watcher", `class = "Tick"`, func(*Event) { done <- struct{}{} }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := sys.Publish(NewEvent("Tick").Float("n", float64(i)).Build()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("deliveries timed out")
		}
	}

	resp, err := http.Get("http://" + sys.ObsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(strings.NewReader(string(body))); err != nil {
		t.Fatalf("malformed exposition: %v", err)
	}
	// Node stats come from the overlay's per-node counters; delivery
	// happens at the stage-1 nodes, so sum across all node labels.
	if got := scrapeSeries(t, string(body), "eventsys_node_delivered_events_total", `node=`); got < 10 {
		t.Fatalf("delivered counter %v, want >= 10", got)
	}
	if hops := scrapeSeries(t, string(body), "eventsys_hop_latency_seconds_count", `hop="deliver"`); hops <= 0 {
		t.Fatal("deliver hop histogram empty with tracing on")
	}

	sys.Close()
	if sys.ObsRegistry().Healthy() {
		t.Fatal("registry still healthy after Close")
	}
}
