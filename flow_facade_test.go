package eventsys

import (
	"testing"
	"time"
)

// TestFlowPolicyThroughFacade: Options.FlowPolicy/FlowWindow reach the
// runtime — a saturating burst against a slow subscriber under
// FlowDropOldest sheds (counted, conserving events) and FlowStats
// reports the configured windows.
func TestFlowPolicyThroughFacade(t *testing.T) {
	sys, err := New(Options{
		Fanouts:    []int{1, 2},
		FlowPolicy: FlowDropOldest,
		FlowWindow: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Advertise("Tick", "n"); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	sub, err := sys.Subscribe("slow", `class = "Tick"`, func(*Event) {
		time.Sleep(200 * time.Microsecond)
		delivered++
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	const n = 300
	for i := 0; i < n; i++ {
		if err := sys.Publish(NewEvent("Tick").Int("n", int64(i)).Build()); err != nil {
			t.Fatal(err)
		}
	}
	sys.Flush()

	var dropped uint64
	for _, st := range sys.Stats() {
		dropped += st.Dropped
	}
	if uint64(delivered)+dropped != n {
		t.Fatalf("delivered %d + dropped %d != published %d", delivered, dropped, n)
	}
	if dropped == 0 {
		t.Fatal("drop policy never engaged; facade plumbing untested")
	}
	qs := sys.FlowStats()
	if len(qs) == 0 {
		t.Fatal("FlowStats returned no queues")
	}
	for _, q := range qs {
		if q.Window != 8 {
			t.Fatalf("queue %s window %d, want the configured 8", q.Name, q.Window)
		}
	}
}

// TestParseFlowPolicy covers the public flag surface.
func TestParseFlowPolicy(t *testing.T) {
	for _, p := range []FlowPolicy{FlowBlock, FlowDropNewest, FlowDropOldest, FlowSpillToStore} {
		got, err := ParseFlowPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: got %v, err %v", p, got, err)
		}
	}
	if _, err := ParseFlowPolicy("nope"); err == nil {
		t.Fatal("bogus policy parsed")
	}
}
