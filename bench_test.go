// Benchmark harness regenerating every table and figure of the paper's
// evaluation (Section 5) plus the ablations in DESIGN.md. Each benchmark
// reports the quantities the paper's artifact states as custom metrics
// (RLC, MR, stored filters), so `go test -bench` output stands in for
// the paper's tables:
//
//	BenchmarkTable1RLC        — §5.3 RLC table (global RLC, per-stage via eventsim)
//	BenchmarkFigure7MR        — Fig. 7 subscriber matching rate
//	BenchmarkGlobalRLC        — "global total of RLCs ≈ 1" claim
//	BenchmarkCentralizedRLC   — centralized baseline (RLC = 1 by construction)
//	BenchmarkBroadcast        — broadcast baseline per-subscriber load
//	BenchmarkPlacementAblation— A1: covering-search vs random placement
//	BenchmarkPrefilterAblation— A2: pre-filtering vs class-only flooding
//	BenchmarkMatchingEngines  — A3: naive table (Fig. 6) vs counting index
//
// plus microbenchmarks for the core operations (matching, covering,
// weakening, parsing, reflection extraction, wire codec, end-to-end
// overlay throughput).
package eventsys

import (
	"bytes"
	"fmt"
	"io"
	"math/rand/v2"
	"testing"

	"eventsys/internal/baseline"
	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/index"
	"eventsys/internal/mesh"
	"eventsys/internal/object"
	"eventsys/internal/obs"
	"eventsys/internal/partition"
	"eventsys/internal/sim"
	"eventsys/internal/store"
	"eventsys/internal/transport"
	"eventsys/internal/typing"
	"eventsys/internal/weaken"
	"eventsys/internal/workload"
)

// --- experiment benchmarks (one per table / figure / claim) ---

// BenchmarkTable1RLC regenerates the §5.3 RLC table's populations. The
// per-stage rows print via `go run ./cmd/eventsim -experiment table1`;
// here the headline aggregates are reported as metrics.
func BenchmarkTable1RLC(b *testing.B) {
	for b.Loop() {
		res, err := sim.Run(sim.DefaultConfig(1, 1000, 5000))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GlobalRLC, "globalRLC")
		b.ReportMetric(res.SubscriberAvgMR, "subMR")
	}
}

// BenchmarkFigure7MR regenerates the Fig. 7 population (150 subscribers)
// and reports the subscriber-average matching rate (paper: 0.87).
func BenchmarkFigure7MR(b *testing.B) {
	for b.Loop() {
		res, err := sim.Run(sim.DefaultConfig(1, 150, 5000))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SubscriberAvgMR, "subMR")
	}
}

// BenchmarkGlobalRLC measures the global RLC total across population
// sizes (paper claim C1: ≈ 1; lower is better — our filter collapsing
// lands well below 1).
func BenchmarkGlobalRLC(b *testing.B) {
	for _, subs := range []int{100, 300, 1000} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			for b.Loop() {
				res, err := sim.Run(sim.DefaultConfig(1, subs, 3000))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.GlobalRLC, "globalRLC")
			}
		})
	}
}

// BenchmarkCentralizedRLC measures the centralized baseline (C2): all
// subscriptions at one server, RLC = 1 by construction, and the raw
// matching throughput that implies.
func BenchmarkCentralizedRLC(b *testing.B) {
	bib, err := workload.NewBiblio(1, workload.DefaultBiblio())
	if err != nil {
		b.Fatal(err)
	}
	central := baseline.NewCentralized(nil, nil)
	for i := 0; i < 500; i++ {
		central.Subscribe(fmt.Sprintf("s%d", i), bib.Subscription(0, true))
	}
	b.ResetTimer()
	n := 0
	for b.Loop() {
		central.Publish(bib.Event())
		n++
	}
	st := central.Stats()
	b.ReportMetric(st.RLC(uint64(n), 500)*float64(n)/float64(st.Received), "RLC")
}

// BenchmarkBroadcast measures the broadcast baseline (C3): every
// subscriber filters every event; per-event cost grows with membership.
func BenchmarkBroadcast(b *testing.B) {
	for _, members := range []int{100, 400} {
		b.Run(fmt.Sprintf("members=%d", members), func(b *testing.B) {
			bib, err := workload.NewBiblio(1, workload.DefaultBiblio())
			if err != nil {
				b.Fatal(err)
			}
			bcast := baseline.NewBroadcast(nil)
			for i := 0; i < members; i++ {
				bcast.Subscribe(fmt.Sprintf("s%d", i), bib.Subscription(0, true))
			}
			b.ResetTimer()
			for b.Loop() {
				bcast.Publish(bib.Event())
			}
		})
	}
}

// BenchmarkPlacementAblation compares the Figure 5 covering-search
// placement with random placement (A1): stored broker filters and
// forwarded event copies, identical delivery.
func BenchmarkPlacementAblation(b *testing.B) {
	for _, random := range []bool{false, true} {
		name := "covering"
		if random {
			name = "random"
		}
		b.Run(name, func(b *testing.B) {
			for b.Loop() {
				cfg := sim.DefaultConfig(1, 500, 2000)
				cfg.RandomPlacement = random
				res, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.BrokerFilters), "filters")
				b.ReportMetric(float64(res.ForwardTotal), "forwards")
			}
		})
	}
}

// BenchmarkPrefilterAblation compares multi-stage pre-filtering with
// class-only flooding (A2): traffic reaching subscribers.
func BenchmarkPrefilterAblation(b *testing.B) {
	for _, mode := range []string{"multistage", "classonly"} {
		b.Run(mode, func(b *testing.B) {
			for b.Loop() {
				cfg := sim.DefaultConfig(1, 300, 2000)
				if mode == "classonly" {
					cfg.StageAttrs = []int{4, 0, 0, 0}
				}
				res, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				var recv uint64
				var n int
				for _, st := range res.Stats {
					if st.Stage == 0 {
						recv += st.Received
						n++
					}
				}
				b.ReportMetric(float64(recv)/float64(n), "recv/sub")
			}
		})
	}
}

// BenchmarkMatchingEngines contrasts the naive Figure 6 table with the
// counting index, the sharded parallel engine, and the predicate-indexed
// engine across subscription populations (A3): matching cost per event.
// BenchmarkIndexedMatch in internal/index carries the large-population
// (10k–1M) indexed-engine curve. The sharded engine is
// measured on its batch path (batches of 64, its deployment shape; see
// BenchmarkShardedMatch in internal/index for the shard-scaling curve).
func BenchmarkMatchingEngines(b *testing.B) {
	const batch = 64
	for _, filters := range []int{100, 1000, 5000} {
		for _, engineName := range []string{"naive", "counting", "sharded", "indexed"} {
			b.Run(fmt.Sprintf("%s/filters=%d", engineName, filters), func(b *testing.B) {
				bib, err := workload.NewBiblio(7, workload.DefaultBiblio())
				if err != nil {
					b.Fatal(err)
				}
				var eng index.Engine
				switch engineName {
				case "naive":
					eng = index.NewNaiveTable(nil)
				case "counting":
					eng = index.NewCountingTable(nil)
				case "indexed":
					eng = index.NewIndexedTable(nil)
				default:
					eng = index.NewSharded(nil, 0)
				}
				for i := 0; i < filters; i++ {
					eng.Insert(bib.Subscription(0.1, true), fmt.Sprintf("id%d", i))
				}
				events := make([]event.View, 512)
				for i := range events {
					events[i] = bib.Event()
				}
				b.ResetTimer()
				if engineName == "sharded" {
					n := 0
					for b.Loop() {
						off := n % (len(events) - batch)
						index.MatchEach(eng, events[off:off+batch])
						n += batch
					}
					b.ReportMetric(float64(batch), "events/op")
					return
				}
				i := 0
				for b.Loop() {
					eng.Match(events[i%len(events)])
					i++
				}
			})
		}
	}
}

// --- microbenchmarks for core operations ---

func BenchmarkFilterMatch(b *testing.B) {
	f := filter.MustParseFilter(`class = "Stock" && symbol = "Foo" && price < 10 && volume >= 1000`)
	e := event.NewBuilder("Stock").Str("symbol", "Foo").Float("price", 9).Int("volume", 5000).Build()
	b.ReportAllocs()
	for b.Loop() {
		if !f.Matches(e, nil) {
			b.Fatal("must match")
		}
	}
}

func BenchmarkCovers(b *testing.B) {
	weak := filter.MustParseFilter(`class = "Stock" && symbol = "Foo" && price < 11`)
	strong := filter.MustParseFilter(`class = "Stock" && symbol = "Foo" && price < 10`)
	b.ReportAllocs()
	for b.Loop() {
		if !filter.Covers(weak, strong, nil) {
			b.Fatal("must cover")
		}
	}
}

func BenchmarkWeakenFilter(b *testing.B) {
	var ads typing.AdvertisementSet
	ad, err := typing.NewAdvertisement("Biblio", 4, "year", "conference", "author", "title")
	if err != nil {
		b.Fatal(err)
	}
	if err := ads.Put(ad); err != nil {
		b.Fatal(err)
	}
	w := weaken.New(&ads, nil)
	f := filter.MustParseFilter(`class = "Biblio" && year = 2002 && conference = "ICDCS" && author = "Eugster"`)
	b.ReportAllocs()
	for b.Loop() {
		for stage := 1; stage <= 3; stage++ {
			w.Filter(f, stage)
		}
	}
}

func BenchmarkParseFilter(b *testing.B) {
	const src = `class = "Stock" && symbol = "Foo" && price < 10.0 && note prefix "q" || class = "Auction"`
	b.ReportAllocs()
	for b.Loop() {
		if _, err := filter.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

type benchStock struct {
	Symbol string
	Price  float64
	Volume int64
}

func BenchmarkObjectExtract(b *testing.B) {
	s := benchStock{Symbol: "Foo", Price: 9.5, Volume: 100}
	b.ReportAllocs()
	for b.Loop() {
		if _, err := object.Extract(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransportRoundTrip(b *testing.B) {
	e := event.NewBuilder("Stock").Str("symbol", "Foo").Float("price", 9.5).
		Int("volume", 100).Payload(make([]byte, 256)).ID(1).Build()
	raw := event.EncodeRaw(e)
	var buf bytes.Buffer
	b.ReportAllocs()
	for b.Loop() {
		buf.Reset()
		if err := transport.WriteFrame(&buf, transport.Publish{Event: raw}); err != nil {
			b.Fatal(err)
		}
		if _, err := transport.ReadFrame(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForwardPath measures one broker forward hop — read an
// inbound Forward frame, match it against the subscription table, frame
// it for the next peer — on the two event representations: "raw" is the
// zero-copy path shipped here (match over wire bytes, relay the same
// bytes), "decoded" is the old per-hop cost (materialize the event,
// match the decoded form, re-encode for the next hop). The raw row's
// allocs/op is the headline number of the zero-copy refactor; CI gates
// on its throughput via scripts/bench_compare.sh.
func BenchmarkForwardPath(b *testing.B) {
	bib, err := workload.NewBiblio(7, workload.DefaultBiblio())
	if err != nil {
		b.Fatal(err)
	}
	table := index.NewCountingTable(nil)
	for i := 0; i < 1000; i++ {
		table.Insert(bib.Subscription(0.1, true), fmt.Sprintf("s%d", i))
	}
	// Pre-frame a ring of Forward frames, as they would arrive on a peer
	// link.
	const ring = 256
	var stream bytes.Buffer
	for i := 0; i < ring; i++ {
		ev := bib.Event()
		ev.ID = uint64(i + 1)
		if err := transport.WriteFrame(&stream, transport.Forward{Event: event.EncodeRaw(ev)}); err != nil {
			b.Fatal(err)
		}
	}
	frames := stream.Bytes()
	// The raw path carries the production tracing guards with a
	// disabled tracer — the cost the bench gate pins at ~zero: one
	// atomic load per frame, no stamps, no histogram writes.
	tracer := obs.NewTracer()
	for _, mode := range []string{"raw", "decoded"} {
		b.Run(mode, func(b *testing.B) {
			rd := bytes.NewReader(frames)
			fr := transport.NewFrameReader(rd)
			b.ReportAllocs()
			for b.Loop() {
				if rd.Len() == 0 {
					rd.Reset(frames)
				}
				m, err := fr.ReadFrame()
				if err != nil {
					b.Fatal(err)
				}
				fwd := m.(transport.Forward)
				if mode == "raw" {
					if tracer.Enabled() {
						fwd.Event.SetStamp(obs.Nanotime())
					}
					table.Match(fwd.Event)
					if err := transport.WriteFrame(io.Discard, fwd); err != nil {
						b.Fatal(err)
					}
					if tracer.Enabled() {
						tracer.Observe(obs.HopForward, fwd.Event.Stamp())
					}
					continue
				}
				// The pre-refactor hop: decode, match the decoded event,
				// re-encode for the next peer.
				ev := fwd.Event.Event()
				table.Match(ev)
				reframed := transport.Forward{Event: event.EncodeRaw(ev.Clone())}
				if err := transport.WriteFrame(io.Discard, reframed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPartitionedFanIn measures the publisher-side partition
// decision — hash the event's key fields (class + leading attribute),
// map the key onto a partition, look up the owning replica in the
// rendezvous table — over pre-encoded wire events. This is the per-
// publish cost sharding adds ahead of the forward path, paid once per
// event by every partition-aware publisher fanning in to the owning
// replica; CI gates on its throughput via scripts/bench_compare.sh and
// the headline is allocs/op = 0.
func BenchmarkPartitionedFanIn(b *testing.B) {
	bib, err := workload.NewBiblio(7, workload.DefaultBiblio())
	if err != nil {
		b.Fatal(err)
	}
	const ring = 256
	events := make([]*event.Raw, ring)
	for i := range events {
		ev := bib.Event()
		ev.ID = uint64(i + 1)
		events[i] = event.EncodeRaw(ev)
	}
	reps := make([]partition.Replica, 8)
	for i := range reps {
		reps[i] = partition.Replica{
			ID:   fmt.Sprintf("broker-%d", i),
			Addr: fmt.Sprintf("10.0.0.%d:7070", i+1),
		}
	}
	m := partition.New(64, reps)
	b.ReportAllocs()
	var sink uint64
	i := 0
	for b.Loop() {
		r := m.Owner(m.PartitionOf(partition.KeyOf(events[i&(ring-1)])))
		sink += uint64(len(r.Addr))
		i++
	}
	if sink == 0 {
		b.Fatal("partition decision resolved no owners")
	}
}

// BenchmarkForwardPathTraced is the raw forward hop of
// BenchmarkForwardPath with hop-latency tracing ENABLED: each frame is
// stamped on read and the match and forward stages record into the
// tracer's histograms. Compare its ns/op and allocs/op against
// BenchmarkForwardPath/raw to read the tracing overhead directly
// (scripts/bench.sh emits the comparison as FORWARD_PATH.txt).
func BenchmarkForwardPathTraced(b *testing.B) {
	bib, err := workload.NewBiblio(7, workload.DefaultBiblio())
	if err != nil {
		b.Fatal(err)
	}
	table := index.NewCountingTable(nil)
	for i := 0; i < 1000; i++ {
		table.Insert(bib.Subscription(0.1, true), fmt.Sprintf("s%d", i))
	}
	const ring = 256
	var stream bytes.Buffer
	for i := 0; i < ring; i++ {
		ev := bib.Event()
		ev.ID = uint64(i + 1)
		if err := transport.WriteFrame(&stream, transport.Forward{Event: event.EncodeRaw(ev)}); err != nil {
			b.Fatal(err)
		}
	}
	frames := stream.Bytes()
	tracer := obs.NewTracer()
	tracer.Enable(true)
	rd := bytes.NewReader(frames)
	fr := transport.NewFrameReader(rd)
	b.ReportAllocs()
	for b.Loop() {
		if rd.Len() == 0 {
			rd.Reset(frames)
		}
		m, err := fr.ReadFrame()
		if err != nil {
			b.Fatal(err)
		}
		fwd := m.(transport.Forward)
		if tracer.Enabled() {
			fwd.Event.SetStamp(obs.Nanotime())
		}
		table.Match(fwd.Event)
		tracer.Observe(obs.HopMatch, fwd.Event.Stamp())
		if err := transport.WriteFrame(io.Discard, fwd); err != nil {
			b.Fatal(err)
		}
		if tracer.Enabled() {
			tracer.Observe(obs.HopForward, fwd.Event.Stamp())
		}
	}
	if tracer.Hist(obs.HopForward).Count() == 0 {
		b.Fatal("traced benchmark recorded nothing")
	}
}

// BenchmarkStoreAppend measures durable-store append throughput under
// each fsync policy: "always" pays an fsync per event, "batched"
// amortizes it over 64 appends / 100ms, "os" leaves syncing to the page
// cache.
func BenchmarkStoreAppend(b *testing.B) {
	for _, mode := range []struct {
		name      string
		syncEvery int
	}{{"always", 1}, {"batched", 0}, {"os", -1}} {
		b.Run(mode.name, func(b *testing.B) {
			st, err := store.Open(b.TempDir(), store.Options{SyncEvery: mode.syncEvery})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			if _, _, err := st.Register("w"); err != nil {
				b.Fatal(err)
			}
			e := event.EncodeRaw(event.NewBuilder("Stock").Str("symbol", "Foo").Float("price", 9.5).
				Int("volume", 100).Payload(make([]byte, 256)).ID(1).Build())
			b.ReportAllocs()
			var bytes uint64
			for b.Loop() {
				_, n, err := st.Append("w", e)
				if err != nil {
					b.Fatal(err)
				}
				bytes += uint64(n)
			}
			b.SetBytes(int64(bytes / uint64(b.N)))
		})
	}
}

// BenchmarkStoreReplay measures replay throughput: each operation drains
// a pre-built 1000-event backlog from disk through the cursor machinery.
// Small segments keep compaction reclaiming consumed records between
// iterations, so per-op work stays constant.
func BenchmarkStoreReplay(b *testing.B) {
	const backlog = 1000
	st, err := store.Open(b.TempDir(), store.Options{SyncEvery: -1, SegmentBytes: 128 << 10})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	if _, _, err := st.Register("w"); err != nil {
		b.Fatal(err)
	}
	e := event.EncodeRaw(event.NewBuilder("Stock").Str("symbol", "Foo").Float("price", 9.5).
		Int("volume", 100).Payload(make([]byte, 256)).ID(1).Build())
	b.ReportAllocs()
	for b.Loop() {
		b.StopTimer()
		for i := 0; i < backlog; i++ {
			if _, _, err := st.Append("w", e); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		n, err := st.Replay("w", func(*event.Raw) bool { return true })
		if err != nil {
			b.Fatal(err)
		}
		if n != backlog {
			b.Fatalf("replayed %d, want %d", n, backlog)
		}
	}
	b.ReportMetric(backlog, "events/op")
}

// BenchmarkOverlayThroughput measures end-to-end events/sec through the
// concurrent goroutine overlay with 64 subscribers.
func BenchmarkOverlayThroughput(b *testing.B) {
	sys, err := New(Options{Fanouts: []int{1, 4, 16}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Advertise("Stock", "symbol", "price"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		_, err := sys.Subscribe(fmt.Sprintf("s%d", i),
			fmt.Sprintf(`class = "Stock" && symbol = "S%d"`, i%16),
			func(*Event) {})
		if err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewPCG(1, 1))
	b.ResetTimer()
	for b.Loop() {
		e := NewEvent("Stock").Str("symbol", fmt.Sprintf("S%d", rng.IntN(32))).
			Float("price", rng.Float64()*100).Build()
		if err := sys.Publish(e); err != nil {
			b.Fatal(err)
		}
	}
	sys.Flush()
}

// BenchmarkOverlayBatchThroughput measures end-to-end events/sec through
// the batched publish pipeline: sharded matching at every broker, 512
// subscribers, publishes coalesced into batches of up to 256 as the
// actors drain their mailboxes.
func BenchmarkOverlayBatchThroughput(b *testing.B) {
	sys, err := New(Options{
		Fanouts:  []int{1, 4, 16},
		Seed:     1,
		Engine:   EngineSharded,
		MaxBatch: 256,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Advertise("Stock", "symbol", "price"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		_, err := sys.Subscribe(fmt.Sprintf("s%d", i),
			fmt.Sprintf(`class = "Stock" && symbol = "S%d"`, i%64),
			func(*Event) {})
		if err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewPCG(1, 1))
	b.ResetTimer()
	for b.Loop() {
		e := NewEvent("Stock").Str("symbol", fmt.Sprintf("S%d", rng.IntN(128))).
			Float("price", rng.Float64()*100).Build()
		if err := sys.Publish(e); err != nil {
			b.Fatal(err)
		}
	}
	sys.Flush()
	b.StopTimer()
	// Report the achieved coalescing at the root broker.
	for _, st := range sys.Stats() {
		if st.Stage == 3 && st.BatchesMatched > 0 {
			b.ReportMetric(float64(st.BatchSizeSum)/float64(st.BatchesMatched), "avgbatch")
		}
	}
}

// BenchmarkMeshRouting measures event routing through the
// non-hierarchical peer-to-peer configuration (§4 footnote 1): a random
// 32-broker tree with 128 subscriptions.
func BenchmarkMeshRouting(b *testing.B) {
	var ads typing.AdvertisementSet
	ad, err := typing.NewAdvertisement("Biblio", 4, "year", "conference", "author", "title")
	if err != nil {
		b.Fatal(err)
	}
	if err := ads.Put(ad); err != nil {
		b.Fatal(err)
	}
	m := mesh.New(mesh.Config{Ads: &ads, MaxStage: 3})
	rng := rand.New(rand.NewPCG(5, 5))
	ids := make([]mesh.BrokerID, 32)
	for i := range ids {
		ids[i] = mesh.BrokerID(fmt.Sprintf("B%d", i))
		if err := m.AddBroker(ids[i]); err != nil {
			b.Fatal(err)
		}
		if i > 0 {
			if err := m.Connect(ids[i], ids[rng.IntN(i)]); err != nil {
				b.Fatal(err)
			}
		}
	}
	bib, err := workload.NewBiblio(5, workload.DefaultBiblio())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		if err := m.Subscribe(ids[rng.IntN(len(ids))], fmt.Sprintf("s%d", i),
			bib.Subscription(0.1, true)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for b.Loop() {
		if _, err := m.Publish(ids[rng.IntN(len(ids))], bib.Event()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.StoredFilters()), "filters")
}

// BenchmarkSubscriptionPlacement measures the Figure 5 placement walk.
func BenchmarkSubscriptionPlacement(b *testing.B) {
	cfg := sim.DefaultConfig(1, 2000, 1)
	// Subscription placement dominates this configuration: 2000
	// placements, one event.
	b.ResetTimer()
	for b.Loop() {
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(2000, "placements/op")
}
