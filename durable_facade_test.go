package eventsys

import (
	"sync"
	"testing"
)

func TestDurableSubscriptionFacade(t *testing.T) {
	sys := newSystem(t, Options{Seed: 30})
	if err := sys.Advertise("Job", "queue", "priority"); err != nil {
		t.Fatal(err)
	}
	var got []int64
	var mu sync.Mutex
	record := func(e *Event) {
		v, _ := e.Lookup("priority")
		mu.Lock()
		got = append(got, v.IntVal())
		mu.Unlock()
	}
	sub, err := sys.SubscribeDurable("worker", `class = "Job" && queue = "builds"`, record)
	if err != nil {
		t.Fatal(err)
	}
	pub := func(prio int64) {
		e := NewEvent("Job").Str("queue", "builds").Int("priority", prio).Build()
		if err := sys.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	pub(1)
	sys.Flush()

	// Worker goes offline; jobs accumulate.
	if err := sub.Detach(); err != nil {
		t.Fatal(err)
	}
	pub(2)
	pub(3)
	sys.Flush()
	if sub.Backlog() != 2 {
		t.Fatalf("backlog = %d, want 2", sub.Backlog())
	}
	mu.Lock()
	if len(got) != 1 {
		t.Fatalf("delivered while detached: %v", got)
	}
	mu.Unlock()

	// Worker reconnects: backlog drains in order, then live delivery.
	if err := sub.Resume(record); err != nil {
		t.Fatal(err)
	}
	pub(4)
	sys.Flush()
	mu.Lock()
	defer mu.Unlock()
	want := []int64{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestDurableDetachNonDurableFacade(t *testing.T) {
	sys := newSystem(t, Options{Seed: 31})
	sub, err := sys.Subscribe("plain", `class = "E"`, func(*Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Detach(); err == nil {
		t.Error("Detach on plain subscription should fail")
	}
}
