package eventsys

import (
	"fmt"
	"log/slog"
	"time"

	"eventsys/internal/broker"
	"eventsys/internal/filter"
	"eventsys/internal/flow"
	"eventsys/internal/index"
	"eventsys/internal/obs"
	"eventsys/internal/typing"
)

// This file is the networked-deployment facade: where New builds an
// in-process hierarchy, ServeBroker runs one TCP broker node that can
// join a parent/child hierarchy, federate with peer brokers over a mesh
// (BrokerOptions.Peers — cycles allowed: a deterministic spanning-tree
// election keeps routing loop-free and holds redundant links as standby
// failover paths), or both. DialPublisher and DialSubscriber are the
// matching clients. The cmd/broker and cmd/pubsub commands are thin
// wrappers over the same configuration surface.

// BrokerOptions configure one networked broker node.
type BrokerOptions struct {
	// ID is the broker's identity (required, unique across the
	// deployment, e.g. "zurich" or "N2.1").
	ID string
	// Stage is the broker's filtering stage (default 1 = closest to
	// subscribers).
	Stage int
	// Listen is the TCP listen address; default "127.0.0.1:0"
	// (ephemeral — read the bound address back with Broker.Addr).
	Listen string
	// Parent, when non-empty, attaches the broker under a parent in a
	// multi-stage hierarchy.
	Parent string
	// Peers lists peer broker addresses to dial and keep dialed (with
	// reconnect) for SIENA-style mesh federation. Each edge is
	// configured on exactly one side — the other side only accepts. The
	// graph may contain cycles: a deterministic spanning-tree election
	// picks the links that carry traffic and holds the rest as connected
	// standby edges that take over when an elected link's broker dies.
	// The set is runtime-mutable: see Broker.AddPeer, RemovePeer and
	// SetPeers.
	Peers []string
	// HeartbeatInterval paces PeerPing liveness probes on federation
	// links (0 = default 2s, negative = disabled); DeadLinkTimeout is
	// how long a link may stay silent before it is declared dead and
	// closed (0 = 4× the heartbeat interval). Dead links feed the same
	// re-election and failover path as clean disconnects.
	HeartbeatInterval time.Duration
	DeadLinkTimeout   time.Duration
	// PeerMaxStage clamps hop-distance weakening of subscription state
	// propagated to peers: a filter h hops from its home broker is
	// stored in its stage-min(h, PeerMaxStage) weakened form. 0
	// propagates full filters — always exact, most state.
	PeerMaxStage int
	// ReplicaOf, when non-empty, names the replica group this broker
	// joins for partitioned scale-out: brokers sharing the name divide
	// the event key space (rendezvous-hashed partitions derived from the
	// link-state database, so all replicas agree without coordination)
	// and partition-aware publishers fan each event directly to its
	// owning replica. Replicas must still be federated via Peers — the
	// group only assigns load placement on top of the mesh.
	ReplicaOf string
	// Partitions is the partition count for the ReplicaOf group (0 =
	// default 64). Every member of a group must use the same count.
	Partitions int
	// TTL is the subscription lease period; 0 disables expiry.
	TTL time.Duration
	// Engine, Shards and MaxBatch select the matching engine and the
	// publish-batch ceiling, exactly as on the in-process Options.
	Engine   EngineKind
	Shards   int
	MaxBatch int
	// Seed drives subscription-placement randomness.
	Seed uint64
	// DataDir, Durability and StoreMaxBytes configure the durable event
	// store, as on the in-process Options. With federation, the store
	// additionally spools events for peer links that are down or
	// saturated, and persists each link's learned interests for restart
	// recovery.
	DataDir       string
	Durability    Durability
	StoreMaxBytes int64
	// FlowPolicy selects the slow-consumer policy for event traffic at
	// the broker's queues (core inlet and per-connection outbound
	// queues), exactly as on the in-process Options: FlowBlock (default)
	// backpressures — credit grants carry the stall across TCP hops all
	// the way to publishers — while the drop policies shed (counted) and
	// FlowSpillToStore diverts overflow to the durable store for
	// in-order replay. FlowWindow bounds each queue and sets the event
	// credit window granted to senders (default 1024).
	FlowPolicy FlowPolicy
	FlowWindow int
	// ObsAddr, when non-empty, starts an observability HTTP listener
	// ("127.0.0.1:0" for ephemeral — read it back with Broker.ObsAddr)
	// serving /metrics (Prometheus text format), /healthz, /readyz,
	// /debug/status and /debug/pprof for this broker.
	ObsAddr string
	// Trace enables hop-level latency tracing: inbound events are
	// stamped on arrival and the match/forward/deliver stages record
	// elapsed-since-arrival histograms on /metrics. Off by default.
	Trace bool
	// Logger receives the broker's operational logs (peer link
	// lifecycle, store recovery and compaction, flow stalls). Nil
	// discards them.
	Logger *slog.Logger
}

// Broker is a running networked broker node.
type Broker struct {
	srv    *broker.Server
	obsReg *obs.Registry
	obsSrv *obs.Server // nil without BrokerOptions.ObsAddr
}

// PeerLinkStats is a point-in-time snapshot of one federation link (see
// Broker.PeerStats).
type PeerLinkStats = broker.PeerLinkStats

// TopologyStats is a point-in-time snapshot of the broker's federation
// control plane: the link-state database, the elected spanning tree,
// failover progress, and the runtime-intended peer set (see
// Broker.TopologyStats).
type TopologyStats = broker.TopologyStats

// PartitionStats is a point-in-time snapshot of the broker's partition
// plane: replica-group membership, the agreed partition map epoch,
// owned partitions and redirect traffic (see Broker.PartitionStats).
type PartitionStats = broker.PartitionStats

// ServeBroker starts a networked broker node and returns once it is
// listening.
func ServeBroker(opts BrokerOptions) (*Broker, error) {
	if opts.ID == "" {
		return nil, fmt.Errorf("eventsys: BrokerOptions.ID is required")
	}
	if opts.Stage == 0 {
		opts.Stage = 1
	}
	if opts.Listen == "" {
		opts.Listen = "127.0.0.1:0"
	}
	var syncEvery int
	switch opts.Durability {
	case DurabilityAlways:
		syncEvery = 1
	case DurabilityOS:
		syncEvery = -1
	}
	reg := obs.NewRegistry()
	srv, err := broker.Serve(broker.ServerConfig{
		ID:                opts.ID,
		Stage:             opts.Stage,
		ListenAddr:        opts.Listen,
		ParentAddr:        opts.Parent,
		Peers:             opts.Peers,
		HeartbeatInterval: opts.HeartbeatInterval,
		DeadLinkTimeout:   opts.DeadLinkTimeout,
		PeerMaxStage:      opts.PeerMaxStage,
		ReplicaOf:         opts.ReplicaOf,
		Partitions:        opts.Partitions,
		TTL:               opts.TTL,
		Engine:            index.Kind(opts.Engine),
		Shards:            opts.Shards,
		MaxBatch:          opts.MaxBatch,
		Seed:              opts.Seed,
		Logger:            opts.Logger,
		DataDir:           opts.DataDir,
		SyncEvery:         syncEvery,
		StoreMaxBytes:     opts.StoreMaxBytes,
		FlowPolicy:        flow.Policy(opts.FlowPolicy),
		FlowWindow:        opts.FlowWindow,
		Obs:               reg,
		Trace:             opts.Trace,
	})
	if err != nil {
		return nil, err
	}
	b := &Broker{srv: srv, obsReg: reg}
	if opts.ObsAddr != "" {
		osrv, err := obs.Serve(opts.ObsAddr, reg)
		if err != nil {
			srv.Close()
			return nil, err
		}
		b.obsSrv = osrv
	}
	return b, nil
}

// ObsAddr returns the bound address of the broker's observability
// listener, or "" when it runs without one (BrokerOptions.ObsAddr
// empty).
func (b *Broker) ObsAddr() string {
	if b.obsSrv == nil {
		return ""
	}
	return b.obsSrv.Addr()
}

// ObsRegistry exposes the broker's observability registry so embedding
// applications can contribute their own sources or serve it from an
// existing HTTP mux instead of BrokerOptions.ObsAddr.
func (b *Broker) ObsRegistry() *obs.Registry { return b.obsReg }

// Addr returns the broker's bound listen address.
func (b *Broker) Addr() string { return b.srv.Addr() }

// Close shuts the broker down, flushing and closing its durable store.
// The /healthz verdict flips to 503 first, then the broker drains, then
// the observability listener (if any) stops — so scrapers can watch the
// drain.
func (b *Broker) Close() {
	b.obsReg.SetHealthy(false)
	b.srv.Close()
	if b.obsSrv != nil {
		_ = b.obsSrv.Close()
	}
}

// Stats snapshots the broker's node metrics (LC/RLC/MR inputs plus the
// federation-plane counters).
func (b *Broker) Stats() NodeStats { return b.srv.Stats() }

// PeerStats snapshots every federation link: up/down, interests learned
// and sent, covering-pruning economy, forwards, durable spool traffic
// and resyncs.
func (b *Broker) PeerStats() []PeerLinkStats { return b.srv.PeerStats() }

// FlowStats snapshots the broker's bounded queues (core inlet plus
// every connection's outbound event queue): depth, high-water mark and
// per-queue drop/spill/stall counts.
func (b *Broker) FlowStats() []QueueStats { return b.srv.FlowStats() }

// FederationFilters reports the broker's federation-plane filter count
// (its own subscribers' originals plus per-link interests) — the
// quantity the paper's LC counts for one mesh node.
func (b *Broker) FederationFilters() int { return b.srv.FederationFilters() }

// AddPeer adds a peer broker address to the intended dial set at
// runtime; the control plane dials it, keeps it dialed, and the
// spanning-tree election decides whether the new link carries traffic
// or stands by. Adding an address already intended is a no-op.
func (b *Broker) AddPeer(addr string) { b.srv.AddPeer(addr) }

// RemovePeer removes a peer broker address from the intended dial set
// at runtime, closing any live connection to it; the election routes
// around the edge if the remaining topology allows. Only this side's
// dial intent is removed — a peer that dials us stays accepted.
func (b *Broker) RemovePeer(addr string) { b.srv.RemovePeer(addr) }

// SetPeers replaces the whole intended peer dial set at runtime
// (re-peering after a config reload: cmd/broker wires SIGHUP here).
func (b *Broker) SetPeers(addrs []string) { b.srv.SetPeers(addrs) }

// TopologyStats snapshots the federation control plane: brokers and
// agreed edges in the link-state database, elected active and standby
// links, failovers and re-routed events, reconciler and heartbeat
// activity, and the intended peer set.
func (b *Broker) TopologyStats() TopologyStats { return b.srv.TopologyStats() }

// Advertised returns the event classes the broker holds advertisements
// for (advertisements disseminate from publishers through the hierarchy
// and across the federation).
func (b *Broker) Advertised() []string { return b.srv.Advertised() }

// PartitionStats snapshots the broker's partition plane: the replica
// group, the agreed map epoch, partitions owned here, publisher
// redirects issued and off-owner publishes absorbed, and consumer-group
// membership. Zero-valued outside a replica group.
func (b *Broker) PartitionStats() PartitionStats { return b.srv.PartitionStats() }

// RemotePublisher is a publisher client connected to a networked broker.
type RemotePublisher struct {
	pub    *broker.Publisher
	stages int
}

// DialPublisher connects a publisher to the broker at addr.
func DialPublisher(addr, id string) (*RemotePublisher, error) {
	p, err := broker.DialPublisher(addr, id)
	if err != nil {
		return nil, err
	}
	return &RemotePublisher{pub: p, stages: 4}, nil
}

// Publish sends one event to the broker.
func (p *RemotePublisher) Publish(e *Event) error { return p.pub.Publish(e) }

// PublishBatch sends a run of events in one wire frame.
func (p *RemotePublisher) PublishBatch(events []*Event) error {
	return p.pub.PublishBatch(events)
}

// Advertise announces an event class with its attributes ordered from
// most general to least general, exactly as System.Advertise does; the
// advertisement disseminates through the hierarchy and across the
// federation. The stage association uses the canonical four-stage depth
// (three broker stages plus the subscriber stage), which accommodates
// PeerMaxStage weakening up to 3.
func (p *RemotePublisher) Advertise(class string, attrs ...string) error {
	ad, err := typing.NewAdvertisement(class, p.stages, attrs...)
	if err != nil {
		return err
	}
	return p.pub.Advertise(ad)
}

// PartitionEpoch reports the epoch of the partition map the publisher
// is routing by, or 0 while it is unpartitioned (no broker has
// redirected it yet, or the deployment has no replica group).
func (p *RemotePublisher) PartitionEpoch() uint64 { return p.pub.PartitionEpoch() }

// Close tears the publisher connection down.
func (p *RemotePublisher) Close() error { return p.pub.Close() }

// RemoteSubscription is a live subscription served by a networked
// broker.
type RemoteSubscription struct {
	sub *broker.Subscriber
}

// DialSubscriber subscribes at the broker at addr (following placement
// redirects in a hierarchy) and delivers matching events to handler on a
// dedicated goroutine. The subscription text is one conjunctive filter
// in the same language as System.Subscribe (dial once per disjunct for a
// disjunction). In a federation, the interest propagates to peer brokers
// in hop-weakened form, and matching events published anywhere in the
// mesh are forwarded here.
func DialSubscriber(addr, id, subscription string, handler func(*Event)) (*RemoteSubscription, error) {
	f, err := filter.ParseFilter(subscription)
	if err != nil {
		return nil, err
	}
	s, err := broker.DialSubscriber(addr, id, f, broker.SubscriberOptions{}, handler)
	if err != nil {
		return nil, err
	}
	return &RemoteSubscription{sub: s}, nil
}

// DialGroupSubscriber joins the named consumer group at the broker at
// addr: every member dialing the same broker with the same group name
// shares one logical subscription, and each matching event is delivered
// to exactly one member (competing consumers), so adding members
// divides the stream instead of copying it. The group holds one durable
// cursor — events arriving while no member can take them spill there
// and replay to the next member — and each delivery is leased: a member
// that disconnects or stalls without acknowledging forfeits its
// in-flight events to the survivors (at-least-once, unordered across
// members). All members of one group must dial the same broker.
func DialGroupSubscriber(addr, id, group, subscription string, handler func(*Event)) (*RemoteSubscription, error) {
	f, err := filter.ParseFilter(subscription)
	if err != nil {
		return nil, err
	}
	s, err := broker.DialSubscriber(addr, id, f, broker.SubscriberOptions{Group: group}, handler)
	if err != nil {
		return nil, err
	}
	return &RemoteSubscription{sub: s}, nil
}

// Stats reports events received (pre perfect filtering) and delivered.
func (s *RemoteSubscription) Stats() (received, delivered uint64) { return s.sub.Stats() }

// Close unsubscribes and tears the connection down.
func (s *RemoteSubscription) Close() error { return s.sub.Close() }
