package eventsys_test

import (
	"fmt"

	"eventsys"
)

// Quote is an application-defined event type; only its extracted
// meta-data (symbol, price) is visible to brokers.
type Quote struct {
	Symbol string
	Price  float64
}

// ExampleSystem demonstrates the end-to-end object flow: advertise,
// subscribe with a content filter, publish typed events.
func ExampleSystem() {
	sys, err := eventsys.New(eventsys.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	defer sys.Close()
	if err := sys.Advertise("Quote", "symbol", "price"); err != nil {
		panic(err)
	}

	done := make(chan Quote, 1)
	if _, err := eventsys.SubscribeObject(sys, "trader",
		`class = "Quote" && symbol = "ACME" && price < 10`,
		func(q Quote) { done <- q }); err != nil {
		panic(err)
	}

	eventsys.PublishObject(sys, "Quote", Quote{Symbol: "ACME", Price: 12.0}) // filtered out
	eventsys.PublishObject(sys, "Quote", Quote{Symbol: "ACME", Price: 9.5})  // delivered
	sys.Flush()

	q := <-done
	fmt.Printf("%s at %.2f\n", q.Symbol, q.Price)
	// Output: ACME at 9.50
}

// ExampleSystem_Subscribe shows the untyped property-set API and the
// subscription text syntax, including disjunction.
func ExampleSystem_Subscribe() {
	sys, err := eventsys.New(eventsys.Options{Seed: 2})
	if err != nil {
		panic(err)
	}
	defer sys.Close()

	hits := make(chan string, 2)
	if _, err := sys.Subscribe("ops",
		`class = "Alert" && level >= 3 || class = "Outage"`,
		func(e *eventsys.Event) { hits <- e.Type }); err != nil {
		panic(err)
	}

	sys.Publish(eventsys.NewEvent("Alert").Int("level", 1).Build()) // below threshold
	sys.Publish(eventsys.NewEvent("Alert").Int("level", 4).Build())
	sys.Publish(eventsys.NewEvent("Outage").Str("region", "eu").Build())
	sys.Flush()

	fmt.Println(<-hits)
	fmt.Println(<-hits)
	// The two filters of the disjunction travel independent broker
	// paths, so cross-event arrival order is not guaranteed.
	// Unordered output:
	// Alert
	// Outage
}

// ExampleSystem_RegisterType shows type-based publish/subscribe: a
// subscription to a supertype receives all subtypes.
func ExampleSystem_RegisterType() {
	sys, err := eventsys.New(eventsys.Options{Seed: 3})
	if err != nil {
		panic(err)
	}
	defer sys.Close()
	sys.RegisterType("Instrument", "")
	sys.RegisterType("Stock", "Instrument")
	sys.RegisterType("Bond", "Instrument")

	types := make(chan string, 2)
	if _, err := sys.Subscribe("any-instrument", `class = "Instrument"`,
		func(e *eventsys.Event) { types <- e.Type }); err != nil {
		panic(err)
	}
	sys.Publish(eventsys.NewEvent("Stock").Str("symbol", "X").Build())
	sys.Publish(eventsys.NewEvent("Bond").Str("issuer", "Y").Build())
	sys.Flush()

	fmt.Println(<-types)
	fmt.Println(<-types)
	// Output:
	// Stock
	// Bond
}
