// Mesh demonstrates the non-hierarchical broker configuration the paper
// mentions in Section 4 (footnote 1): an acyclic peer-to-peer graph with
// reverse-path forwarding and hop-distance filter weakening.
//
// Topology (a small federation of three sites):
//
//	geneva ─ zurich ─ lausanne
//	            │
//	         basel
//
// A subscription at lausanne floods weakened filters outward: zurich
// (1 hop) stores a stage-1 filter, geneva and basel (2 hops) stage-2
// filters. Events published anywhere reach exactly the interested
// subscribers.
package main

import (
	"fmt"
	"log"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/mesh"
	"eventsys/internal/typing"
)

func main() {
	var ads typing.AdvertisementSet
	ad, err := typing.NewAdvertisement("Stock", 3, "symbol", "price")
	if err != nil {
		log.Fatal(err)
	}
	ad.StageAttrs = []int{2, 2, 1}
	if err := ads.Put(ad); err != nil {
		log.Fatal(err)
	}

	m := mesh.New(mesh.Config{Ads: &ads, MaxStage: 2})
	for _, id := range []mesh.BrokerID{"geneva", "zurich", "lausanne", "basel"} {
		if err := m.AddBroker(id); err != nil {
			log.Fatal(err)
		}
	}
	for _, link := range [][2]mesh.BrokerID{
		{"geneva", "zurich"}, {"zurich", "lausanne"}, {"zurich", "basel"},
	} {
		if err := m.Connect(link[0], link[1]); err != nil {
			log.Fatal(err)
		}
	}
	// A cycle is structurally impossible:
	if err := m.Connect("geneva", "lausanne"); err != nil {
		fmt.Println("rejected:", err)
	}

	if err := m.Subscribe("lausanne", "trader-lau",
		filter.MustParseFilter(`class = "Stock" && symbol = "NESN" && price < 100`)); err != nil {
		log.Fatal(err)
	}
	if err := m.Subscribe("basel", "trader-bas",
		filter.MustParseFilter(`class = "Stock" && symbol = "ROG"`)); err != nil {
		log.Fatal(err)
	}

	quotes := []struct {
		sym   string
		price float64
	}{
		{"NESN", 95.0}, {"NESN", 120.0}, {"ROG", 250.0}, {"UBSG", 27.0},
	}
	for _, q := range quotes {
		e := event.NewBuilder("Stock").Str("symbol", q.sym).Float("price", q.price).Build()
		got, err := m.Publish("geneva", e)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s @ %.2f -> %v\n", q.sym, q.price, got)
	}

	fmt.Println("\nper-broker statistics:")
	for _, st := range m.Stats() {
		fmt.Printf("  %-9s filters %-2d received %-2d forwarded %-2d delivered %d\n",
			st.NodeID, st.Filters, st.Received, st.Forwarded, st.Delivered)
	}
	fmt.Printf("total stored filters: %d\n", m.StoredFilters())
}
