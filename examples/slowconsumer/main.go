// Slowconsumer demonstrates the four slow-consumer flow policies on
// one overloaded pipeline: a publisher bursts events far faster than
// the subscriber's handler consumes them, and each run resolves the
// overload the way its Options.FlowPolicy dictates.
//
//   - block       backpressures: Publish stalls, nothing is lost
//   - drop-newest sheds arrivals at the full queue (oldest backlog wins)
//   - drop-oldest evicts the stale head (freshest traffic wins)
//   - spill       diverts overflow to the backlog and replays in order
//
// Run it and compare the columns: delivered vs dropped vs spilled vs
// how long the publisher was allowed to take.
//
//	go run ./examples/slowconsumer
package main

import (
	"fmt"
	"log"
	"time"

	"eventsys"
)

const (
	events = 600
	window = 32 // every queue on the delivery path
	delay  = 300 * time.Microsecond
)

func main() {
	policies := []eventsys.FlowPolicy{
		eventsys.FlowBlock,
		eventsys.FlowDropNewest,
		eventsys.FlowDropOldest,
		eventsys.FlowSpillToStore,
	}
	fmt.Printf("slow consumer: %d events against a %s-per-event handler, window %d\n\n",
		events, delay, window)
	fmt.Printf("%-12s %10s %9s %9s %8s %11s  %s\n",
		"policy", "delivered", "dropped", "spilled", "stalls", "total", "first..last IDs")
	for _, p := range policies {
		if err := run(p); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nblock and spill deliver everything (block by slowing the publisher,")
	fmt.Println("spill by parking overflow in the backlog); the drop policies trade")
	fmt.Println("completeness for latency — newest-first keeps the head of the burst,")
	fmt.Println("oldest-first keeps its tail.")
}

func run(policy eventsys.FlowPolicy) error {
	sys, err := eventsys.New(eventsys.Options{
		Fanouts:    []int{1, 2},
		FlowPolicy: policy,
		FlowWindow: window,
	})
	if err != nil {
		return err
	}
	defer sys.Close()
	if err := sys.Advertise("Tick", "n"); err != nil {
		return err
	}

	var got []uint64
	sub, err := sys.Subscribe("slow", `class = "Tick"`, func(e *eventsys.Event) {
		time.Sleep(delay) // the slow consumer
		got = append(got, e.ID)
	})
	if err != nil {
		return err
	}
	defer sub.Unsubscribe()

	start := time.Now()
	for i := 1; i <= events; i++ {
		e := eventsys.NewEvent("Tick").Int("n", int64(i)).Build()
		if err := sys.Publish(e); err != nil {
			return err
		}
	}
	sys.Flush() // spill replays and block drains before this returns
	total := time.Since(start)

	var dropped, spilled, stalled uint64
	for _, st := range sys.Stats() {
		dropped += st.Dropped
		spilled += st.Spilled
		stalled += st.Stalled
	}
	span := "-"
	if len(got) > 0 {
		span = fmt.Sprintf("%d..%d", got[0], got[len(got)-1])
	}
	fmt.Printf("%-12s %10d %9d %9d %8d %10.0fms  %s\n",
		policy, len(got), dropped, spilled, stalled,
		float64(total.Microseconds())/1000, span)
	return nil
}
