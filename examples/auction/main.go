// Auction reproduces Example 5 of the paper (Section 4): stock and
// auction subscriptions in a four-stage hierarchy, including the
// weakening chain f1..f4 → g1..g3 → h1..h3 → i1,i2 and a wildcard
// subscription (Section 4.4) that attaches above stage 1.
package main

import (
	"fmt"
	"log"

	"eventsys"
	"eventsys/internal/filter"
	"eventsys/internal/typing"
	"eventsys/internal/weaken"
)

// Auction is the application event type of Example 5.
type Auction struct {
	Product  string
	Kind     string
	Capacity int64
	Price    float64
}

func main() {
	// Part 1: show the automated weakening chain exactly as the paper
	// lays it out, using the library's weakening engine directly.
	showWeakeningChain()

	// Part 2: run the subscriptions against a live system.
	runSystem()
}

func showWeakeningChain() {
	var ads typing.AdvertisementSet
	stock, err := typing.NewAdvertisement("Stock", 4, "symbol", "price")
	if err != nil {
		log.Fatal(err)
	}
	stock.StageAttrs = []int{2, 2, 1, 0} // Example 5 keeps price at stage 1
	if err := ads.Put(stock); err != nil {
		log.Fatal(err)
	}
	auction, err := typing.NewAdvertisement("Auction", 4, "product", "kind", "capacity", "price")
	if err != nil {
		log.Fatal(err)
	}
	if err := ads.Put(auction); err != nil {
		log.Fatal(err)
	}

	w := weaken.New(&ads, nil)
	subs := []*filter.Filter{
		filter.MustParseFilter(`class = "Stock" && symbol = "DEF" && price < 10.0`),
		filter.MustParseFilter(`class = "Stock" && symbol = "DEF" && price < 11.0`),
		filter.MustParseFilter(`class = "Stock" && symbol = "GHI" && price < 8.0`),
		filter.MustParseFilter(`class = "Auction" && product = "Vehicle" && kind = "Car" && capacity < 2000 && price < 10000`),
	}
	fmt.Println("Example 5 — automated filter weakening per stage")
	fmt.Println("\nStage-0 (subscriber filters):")
	for i, f := range subs {
		fmt.Printf("  f%d = %s\n", i+1, f)
	}
	for stage := 1; stage <= 3; stage++ {
		fmt.Printf("\nStage-%d (weakened, merged, collapsed):\n", stage)
		for _, f := range w.StageSet(subs, stage) {
			fmt.Printf("  %s\n", f)
		}
	}
	fmt.Println()
}

func runSystem() {
	sys, err := eventsys.New(eventsys.Options{Fanouts: []int{1, 2, 4}, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Advertise("Auction", "product", "kind", "capacity", "price"); err != nil {
		log.Fatal(err)
	}

	deliveries := make(chan string, 64)
	subscribe := func(id, sub string) *eventsys.Subscription {
		h, err := eventsys.SubscribeObject(sys, id, sub, func(a Auction) {
			deliveries <- fmt.Sprintf("%s <- %s/%s cap=%d $%.0f", id, a.Product, a.Kind, a.Capacity, a.Price)
		})
		if err != nil {
			log.Fatal(err)
		}
		return h
	}

	// A wildcard subscription leaving capacity and price open: it
	// attaches above stage 1 (Section 4.4). Subscribed first — a later
	// covered subscription would otherwise pull it down an existing path
	// (Figure 5(b) checks covering before wildcards).
	wild := subscribe("fleetWatcher", `class = "Auction" && product = "Vehicle" && kind = "Car"`)
	fmt.Printf("fleetWatcher (wildcard subscription) accepted at broker %s\n", wild.Broker())
	// f4 of the paper: fully specified, lands at a stage-1 broker.
	narrow := subscribe("carBuyer", `class = "Auction" && product = "Vehicle" && kind = "Car" && capacity < 2000 && price < 10000`)
	fmt.Printf("carBuyer accepted at broker %s\n\n", narrow.Broker())

	lots := []Auction{
		{Product: "Vehicle", Kind: "Car", Capacity: 1600, Price: 9500},
		{Product: "Vehicle", Kind: "Car", Capacity: 2500, Price: 8000},
		{Product: "Vehicle", Kind: "Truck", Capacity: 9000, Price: 30000},
		{Product: "Computer", Kind: "Laptop", Capacity: 1, Price: 800},
	}
	for _, lot := range lots {
		if err := eventsys.PublishObject(sys, "Auction", lot); err != nil {
			log.Fatal(err)
		}
	}
	sys.Flush()
	close(deliveries)
	for d := range deliveries {
		fmt.Println(d)
	}
}
