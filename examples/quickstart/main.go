// Quickstart: publish typed events through a multi-stage broker
// hierarchy and receive them with a type-safe subscription.
package main

import (
	"fmt"
	"log"

	"eventsys"
)

// Reading is an application-defined event type. Brokers never see this
// struct — only the meta-data attributes extracted from it.
type Reading struct {
	Sensor  string
	Celsius float64
}

func main() {
	// A hierarchy with three broker stages (1 root, 4 mid, 16 leaf
	// brokers) plus the subscriber stage.
	sys, err := eventsys.New(eventsys.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Advertise the event class: attributes ordered most general first.
	// This drives automatic filter weakening per stage.
	if err := sys.Advertise("Reading", "sensor", "celsius"); err != nil {
		log.Fatal(err)
	}

	// Subscribe with a content-based filter; the handler receives
	// decoded Reading values.
	done := make(chan struct{})
	sub, err := eventsys.SubscribeObject(sys, "alarm",
		`class = "Reading" && sensor = "boiler" && celsius > 90`,
		func(r Reading) {
			fmt.Printf("ALERT: %s at %.1f°C\n", r.Sensor, r.Celsius)
			close(done)
		})
	if err != nil {
		log.Fatal(err)
	}

	// Publish a mix of events; only the hot boiler reading is delivered.
	for _, r := range []Reading{
		{Sensor: "boiler", Celsius: 71.0},
		{Sensor: "intake", Celsius: 99.0},
		{Sensor: "boiler", Celsius: 93.5},
	} {
		if err := eventsys.PublishObject(sys, "Reading", r); err != nil {
			log.Fatal(err)
		}
	}
	sys.Flush()
	<-done

	fmt.Printf("delivered %d of %d events reaching the subscriber (accepted at broker %s)\n",
		sub.Delivered(), sub.Received(), sub.Broker())
}
