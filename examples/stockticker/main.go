// Stockticker reproduces the worked example of the paper's Section 3.4:
// encapsulated Stock events, a declarative broker-side filter
// (f1 = class="Stock" ∧ symbol="Foo" ∧ price<10), and the stateful
// BuyFilter predicate that only ever runs at the subscriber runtime.
//
// The example also prints the weakened filters the brokers actually
// store, illustrating the g1 ⊒ f1 covering chain of the paper.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sync"

	"eventsys"
)

// Stock is the paper's event class: private state, accessor methods.
type Stock struct {
	// Exported for gob encoding; filtering metadata uses the getters.
	Symbol string
	Price  float64
}

// GetSymbol is the access-method convention of Section 3.4.
func (s Stock) GetSymbol() string { return s.Symbol }

// GetPrice likewise.
func (s Stock) GetPrice() float64 { return s.Price }

// buyFilter is the paper's BuyFilter: buy when the price dropped below
// threshold × the previous observation — stateful, so inexpressible as a
// broker filter; it runs only at the edge.
type buyFilter struct {
	mu        sync.Mutex
	last      float64
	threshold float64
}

func (b *buyFilter) match(s Stock) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	match := b.last != 0 && s.Price <= b.last*b.threshold
	b.last = s.Price
	return match
}

func main() {
	sys, err := eventsys.New(eventsys.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Advertise("Stock", "symbol", "price"); err != nil {
		log.Fatal(err)
	}

	// The paper's two subscribers: f = (Foo, <10, 0.95) and
	// g = (Foo, <11, 0.97). Broker-side they weaken to price bounds;
	// the threshold logic stays local.
	buyers := []struct {
		id        string
		max       float64
		threshold float64
	}{
		{"buyer-f", 10.0, 0.95},
		{"buyer-g", 11.0, 0.97},
	}
	for _, b := range buyers {
		bf := &buyFilter{threshold: b.threshold}
		id := b.id
		_, err := eventsys.SubscribeObjectWhere(sys, id,
			fmt.Sprintf(`class = "Stock" && symbol = "Foo" && price < %v`, b.max),
			bf.match,
			func(s Stock) { fmt.Printf("%s: BUY %s at %.2f\n", id, s.Symbol, s.Price) })
		if err != nil {
			log.Fatal(err)
		}
	}

	// A noisy market: random walks for three symbols; only Foo below the
	// bounds can trigger buys.
	rng := rand.New(rand.NewPCG(1, 2))
	prices := map[string]float64{"Foo": 9.2, "Bar": 40, "Baz": 7}
	for tick := 0; tick < 200; tick++ {
		for sym := range prices {
			prices[sym] *= 1 + (rng.Float64()-0.5)*0.1
			if err := eventsys.PublishObject(sys, "Stock", Stock{Symbol: sym, Price: prices[sym]}); err != nil {
				log.Fatal(err)
			}
		}
	}
	sys.Flush()

	// Show how much traffic pre-filtering kept away from each buyer.
	fmt.Println("\nper-node statistics (stage 0 = buyers):")
	for _, st := range sys.Stats() {
		if st.Received == 0 {
			continue
		}
		fmt.Printf("  %-8s stage %d  filters %-3d received %-4d matched %-4d MR %.2f\n",
			st.NodeID, st.Stage, st.Filters, st.Received, st.Matched, st.MR())
	}
}
