// Cluster runs a networked broker hierarchy over TCP in a single
// process: one root broker, two leaf brokers, a publisher and two
// subscribers — the deployment shape of the paper's Figure 4, scaled to
// a laptop. Subscribers connect to the root and are redirected to leaf
// brokers by the Figure 5 placement protocol.
package main

import (
	"fmt"
	"log"
	"time"

	"eventsys/internal/broker"
	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/typing"
)

func main() {
	// Root (stage 2) and two leaves (stage 1) on loopback sockets.
	root, err := broker.Serve(broker.ServerConfig{
		ID: "root", Stage: 2, ListenAddr: "127.0.0.1:0", TTL: time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer root.Close()
	var leaves []*broker.Server
	for i := 1; i <= 2; i++ {
		leaf, err := broker.Serve(broker.ServerConfig{
			ID: fmt.Sprintf("N1.%d", i), Stage: 1, ListenAddr: "127.0.0.1:0",
			ParentAddr: root.Addr(), TTL: time.Minute, Seed: uint64(i),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer leaf.Close()
		leaves = append(leaves, leaf)
	}
	for root.ChildBrokers() < len(leaves) {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("hierarchy up: root %s with %d leaf brokers\n", root.Addr(), root.ChildBrokers())

	// Publisher advertises the Stock schema, then feeds quotes.
	pub, err := broker.DialPublisher(root.Addr(), "ticker")
	if err != nil {
		log.Fatal(err)
	}
	defer pub.Close()
	ad, err := typing.NewAdvertisement("Stock", 3, "symbol", "price")
	if err != nil {
		log.Fatal(err)
	}
	ad.StageAttrs = []int{2, 2, 0}
	if err := pub.Advertise(ad); err != nil {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the advertisement reach the leaves

	// Two subscribers with similar filters: the placement protocol
	// clusters them on the same leaf broker.
	sub := func(id, src string) *broker.Subscriber {
		f, err := filter.ParseFilter(src)
		if err != nil {
			log.Fatal(err)
		}
		s, err := broker.DialSubscriber(root.Addr(), id, f,
			broker.SubscriberOptions{RenewEvery: 20 * time.Second},
			func(e *event.Event) { fmt.Printf("  %s got %s\n", id, e) })
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	s1 := sub("alice", `class = "Stock" && symbol = "ACME" && price < 10`)
	defer s1.Close()
	s2 := sub("bob", `class = "Stock" && symbol = "ACME" && price < 12`)
	defer s2.Close()

	fmt.Println("publishing quotes:")
	for _, p := range []float64{9.5, 11.0, 14.0} {
		e := event.NewBuilder("Stock").Str("symbol", "ACME").Float("price", p).Build()
		if err := pub.Publish(e); err != nil {
			log.Fatal(err)
		}
	}
	e := event.NewBuilder("Stock").Str("symbol", "INRT").Float("price", 2).Build()
	if err := pub.Publish(e); err != nil {
		log.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)

	fmt.Println("\nbroker filter tables (clustering in action):")
	fmt.Printf("  root holds %d filter(s)\n", root.Stats().Filters)
	for _, leaf := range leaves {
		st := leaf.Stats()
		fmt.Printf("  %s holds %d filter(s)\n", st.NodeID, st.Filters)
	}
	r1, d1 := s1.Stats()
	r2, d2 := s2.Stats()
	fmt.Printf("\nalice: received %d delivered %d; bob: received %d delivered %d\n", r1, d1, r2, d2)
}
