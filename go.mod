module eventsys

go 1.24
