package eventsys

import (
	"eventsys/internal/testutil"
	"fmt"
	"sync"
	"testing"
)

// TestFederationFacade drives the networked facade end to end: three
// federated brokers in a chain, a subscriber at each edge, publishes at
// one edge — covering ServeBroker, DialPublisher/DialSubscriber, the
// interest propagation across peer links, and the PeerStats surface.
func TestFederationFacade(t *testing.T) {
	a, err := ServeBroker(BrokerOptions{ID: "geneva", PeerMaxStage: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ServeBroker(BrokerOptions{ID: "zurich", PeerMaxStage: 2, Peers: []string{a.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := ServeBroker(BrokerOptions{ID: "basel", PeerMaxStage: 2, Peers: []string{b.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitForCond(t, "links up", func() bool {
		up := 0
		for _, br := range []*Broker{a, b, c} {
			for _, ps := range br.PeerStats() {
				if ps.Up {
					up++
				}
			}
		}
		return up == 4 // two edges, seen from both sides
	})

	// Advertise first so subscription state propagates in its properly
	// hop-weakened forms; the advertisement disseminates basel-ward.
	pub, err := DialPublisher(c.Addr(), "ticker")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Advertise("Stock", "symbol", "price"); err != nil {
		t.Fatal(err)
	}
	waitForCond(t, "advertisement to flood", func() bool {
		for _, br := range []*Broker{a, b, c} {
			if len(br.Advertised()) != 1 {
				return false
			}
		}
		return true
	})

	var mu sync.Mutex
	got := make(map[string][]uint64)
	record := func(who string) func(*Event) {
		return func(e *Event) {
			mu.Lock()
			got[who] = append(got[who], e.ID)
			mu.Unlock()
		}
	}
	subA, err := DialSubscriber(a.Addr(), "alice", `class = "Stock" && symbol = "ACME"`, record("alice"))
	if err != nil {
		t.Fatal(err)
	}
	defer subA.Close()
	subB, err := DialSubscriber(b.Addr(), "bob", `class = "Stock" && price < 10`, record("bob"))
	if err != nil {
		t.Fatal(err)
	}
	defer subB.Close()
	// The publisher sits at basel, so the routing state that matters:
	// zurich must hold alice's (hop-weakened) interest toward geneva,
	// and basel at least one interest toward zurich — covering pruning
	// may legitimately collapse alice's hop-2 and bob's hop-1 forms into
	// one class-level interest there, so no exact global count is
	// asserted.
	waitForCond(t, "interests to flood", func() bool {
		return b.FederationFilters() == 2 && c.FederationFilters() >= 1
	})
	events := []*Event{
		NewEvent("Stock").Str("symbol", "ACME").Float("price", 12).ID(1).Build(),
		NewEvent("Stock").Str("symbol", "OTHR").Float("price", 5).ID(2).Build(),
		NewEvent("Stock").Str("symbol", "ACME").Float("price", 8).ID(3).Build(),
	}
	for _, e := range events[:2] {
		if err := pub.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.PublishBatch(events[2:]); err != nil {
		t.Fatal(err)
	}

	waitForCond(t, "deliveries to land", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got["alice"]) == 2 && len(got["bob"]) == 2
	})
	mu.Lock()
	alice, bob := fmt.Sprint(got["alice"]), fmt.Sprint(got["bob"])
	mu.Unlock()
	if alice != "[1 3]" {
		t.Errorf("alice delivered %s, want [1 3]", alice)
	}
	if bob != "[2 3]" {
		t.Errorf("bob delivered %s, want [2 3]", bob)
	}

	// The middle broker forwarded toward geneva, and the covering
	// economy is visible on the stats surface.
	st := b.Stats()
	if st.PeerForwarded == 0 {
		t.Errorf("zurich forwarded no events; stats %+v", st)
	}
	if recvd, delivered := subA.Stats(); recvd == 0 || delivered != 2 {
		t.Errorf("alice client stats: received=%d delivered=%d, want delivered 2", recvd, delivered)
	}
}

// waitForCond polls cond until it holds or a deadline passes.
func waitForCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	testutil.WaitUntil(t, what, cond)
}
