// Command promcheck validates a Prometheus text exposition (format
// 0.0.4) against the repo's conformance rules — the same validator the
// golden scrape tests use (internal/obs.ValidateExposition). CI's
// endpoint smoke job pipes a live broker's /metrics through it.
//
// Usage:
//
//	curl -s localhost:9090/metrics | go run ./scripts/promcheck
//	go run ./scripts/promcheck http://localhost:9090/metrics
//
// Exit status 0 means the exposition is well-formed; 1 reports the
// first violation on stderr.
package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"

	"eventsys/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
	fmt.Println("exposition ok")
}

func run(args []string) error {
	var in io.Reader = os.Stdin
	if len(args) > 1 {
		return fmt.Errorf("usage: promcheck [metrics-url] (or pipe an exposition on stdin)")
	}
	if len(args) == 1 {
		resp, err := http.Get(args[0])
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d", args[0], resp.StatusCode)
		}
		in = resp.Body
	}
	body, err := io.ReadAll(in)
	if err != nil {
		return err
	}
	// An empty exposition is trivially "valid" but always wrong here: it
	// means the scrape itself failed (dead endpoint, broken pipe), and a
	// smoke check must not pass vacuously.
	if !bytes.Contains(body, []byte("# TYPE ")) {
		return fmt.Errorf("no metric families in input (%d bytes) — scrape failed?", len(body))
	}
	return obs.ValidateExposition(bytes.NewReader(body))
}
