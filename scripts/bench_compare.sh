#!/bin/sh
# bench_compare.sh — compare two bench.sh result files and gate on
# regressions of the forward/deliver benchmarks.
#
# Usage:
#   sh scripts/bench_compare.sh OLD.txt NEW.txt [max_regression_pct]
#
#   OLD.txt / NEW.txt   `go test -bench` outputs as written by
#                       scripts/bench.sh (BENCH_<n>.txt)
#   max_regression_pct  hard-fail threshold on ns/op growth of the
#                       gated benchmarks (default 20)
#
# Environment:
#   GATED   space-separated benchmark-name prefixes to gate on
#           (default: the broker forward path and the end-to-end
#           deliver pipeline)
#
# A benchstat report is printed when benchstat is available (installed,
# or fetchable with `go run`); the hard gate itself needs only awk, so
# it works offline. A gated benchmark missing from either file skips
# its gate with a warning rather than failing — renaming a benchmark
# must not brick CI, but the rename should update GATED here.
set -eu

OLD="$1"
NEW="$2"
MAX="${3:-20}"
GATED="${GATED:-BenchmarkForwardPath/raw BenchmarkOverlayBatchThroughput BenchmarkIndexedMatch/indexed-subs=100000 BenchmarkPartitionedFanIn}"

if command -v benchstat >/dev/null 2>&1; then
    benchstat "$OLD" "$NEW" || true
elif go run golang.org/x/perf/cmd/benchstat@latest "$OLD" "$NEW" 2>/dev/null; then
    :
else
    echo "benchstat unavailable; direct ns/op comparison only" >&2
fi

# mean_nsop FILE PREFIX — average ns/op over result lines whose name
# starts with PREFIX (sub-benchmarks and -cpu suffixes included).
mean_nsop() {
    awk -v p="$2" '$1 ~ "^"p && $4 == "ns/op" { s += $3; n++ } END { if (n) printf "%.0f", s / n }' "$1"
}

fail=0
for b in $GATED; do
    o="$(mean_nsop "$OLD" "$b")"
    n="$(mean_nsop "$NEW" "$b")"
    if [ -z "$o" ] || [ -z "$n" ]; then
        echo "gate: $b missing from old or new results; skipped" >&2
        continue
    fi
    pct="$(awk -v o="$o" -v n="$n" 'BEGIN { printf "%.1f", (n - o) / o * 100 }')"
    echo "gate: $b  old ${o} ns/op  new ${n} ns/op  delta ${pct}%"
    if [ "$(awk -v p="$pct" -v m="$MAX" 'BEGIN { print (p > m) ? 1 : 0 }')" = 1 ]; then
        echo "gate: FAIL — $b regressed ${pct}% (limit ${MAX}%)" >&2
        fail=1
    fi
done
exit $fail
