#!/bin/sh
# sim_digests.sh — the simulator determinism gate.
#
# Runs every cluster scenario TWICE in separate eventsim processes and
# diffs the "name seed digest" lines: any divergence means a
# nondeterminism leak (map iteration, unpartitioned RNG, wall-clock
# dependence) crept into the simulator or the production code it wraps.
# Then compares the first run against the pinned golden file, so a
# behavior change cannot land without regenerating the goldens — a
# deliberate, reviewable act.
#
# Usage:
#   sh scripts/sim_digests.sh           check (CI mode)
#   sh scripts/sim_digests.sh -update   regenerate the golden file
#
# Environment:
#   SEED   scenario seed (default 1, must match the golden file)
set -eu

SEED="${SEED:-1}"
GOLDEN="internal/sim/testdata/cluster_digests.txt"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

go build -o "$OUT/eventsim" ./cmd/eventsim

"$OUT/eventsim" -digests -seed "$SEED" >"$OUT/run1.txt"

if [ "${1:-}" = "-update" ]; then
    {
        echo "# scenario seed digest — regenerate with: go test ./internal/sim -run TestScenarioGoldenDigests -update"
        cat "$OUT/run1.txt"
    } >"$GOLDEN"
    echo "regenerated $GOLDEN"
    exit 0
fi

"$OUT/eventsim" -digests -seed "$SEED" >"$OUT/run2.txt"

if ! diff -u "$OUT/run1.txt" "$OUT/run2.txt"; then
    echo "DETERMINISM FAILURE: two runs of the same seed diverged" >&2
    exit 1
fi
echo "determinism: ${SEED}-seeded double run is digest-identical"

grep -v '^#' "$GOLDEN" >"$OUT/golden.txt"
if ! diff -u "$OUT/golden.txt" "$OUT/run1.txt"; then
    echo "GOLDEN MISMATCH: behavior changed; if intended, regenerate with" >&2
    echo "  sh scripts/sim_digests.sh -update" >&2
    exit 1
fi
echo "golden: digests match $GOLDEN"
