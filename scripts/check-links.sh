#!/bin/sh
# check-links.sh — fail on broken relative links in README.md and
# docs/*.md. External links (http/https/mailto) and pure #anchors are
# skipped; a relative link's target must exist on disk (anchors within
# a target file are not resolved).
#
# Usage: scripts/check-links.sh  (from the repository root)
set -eu

fail=0
for f in README.md docs/*.md; do
    [ -f "$f" ] || continue
    dir=$(dirname "$f")
    # Extract inline markdown link targets: [text](target)
    links=$(grep -o '](\([^)]*\))' "$f" | sed 's/^](//; s/)$//') || true
    for link in $links; do
        case "$link" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        target=${link%%#*}
        [ -n "$target" ] || continue
        if [ ! -e "$dir/$target" ]; then
            echo "BROKEN: $f -> $link"
            fail=1
        fi
    done
done
if [ "$fail" -ne 0 ]; then
    echo "docs link check failed"
    exit 1
fi
echo "docs link check passed"
