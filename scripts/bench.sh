#!/bin/sh
# bench.sh — run the full benchmark suite and emit machine-readable
# results, so the repo's perf trajectory is recorded run over run.
#
# Usage:
#   sh scripts/bench.sh [count] [outdir]
#
#   count   how many BENCH_<n> result sets to produce (default 1;
#           benchstat wants >= 10 for confidence intervals)
#   outdir  where results land (default ./bench-out)
#
# Environment:
#   BENCHTIME   passed to -benchtime (default 1x: a smoke pass; use
#               e.g. 2s for real measurements)
#   BENCH       passed to -bench (default ".": everything)
#
# Each run n produces:
#   outdir/BENCH_<n>.txt   the classic `go test -bench` output — feed
#                          any set of these straight to benchstat:
#                            benchstat old/BENCH_*.txt new/BENCH_*.txt
#   outdir/BENCH_<n>.json  the same text wrapped in a JSON envelope
#                          (goos/goarch/commit/date + the verbatim
#                          benchstat-compatible text in .benchstat_text)
#
# To compare two runs — and gate on regressions of the forward/deliver
# benchmarks, as CI does against the previous run's artifact — use:
#   sh scripts/bench_compare.sh old/BENCH_1.txt new/BENCH_1.txt 20
set -eu

COUNT="${1:-1}"
OUT="${2:-bench-out}"
BENCHTIME="${BENCHTIME:-1x}"
BENCH="${BENCH:-.}"

mkdir -p "$OUT"

# json_escape: stdin -> a JSON string body (no surrounding quotes).
# Backslashes, quotes and tabs (go test output is tab-separated) are
# escaped; newlines become \n.
json_escape() {
    tab="$(printf '\t')"
    sed -e 's/\\/\\\\/g' -e 's/"/\\"/g' -e "s/${tab}/\\\\t/g" |
        awk '{printf "%s\\n", $0}'
}

GOOS="$(go env GOOS)"
GOARCH="$(go env GOARCH)"
COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

n=1
while [ "$n" -le "$COUNT" ]; do
    txt="$OUT/BENCH_${n}.txt"
    json="$OUT/BENCH_${n}.json"
    echo "bench run $n/$COUNT (benchtime=$BENCHTIME) -> $txt, $json" >&2

    go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" ./... > "$txt"

    {
        printf '{\n'
        printf '  "run": %s,\n' "$n"
        printf '  "goos": "%s",\n' "$GOOS"
        printf '  "goarch": "%s",\n' "$GOARCH"
        printf '  "commit": "%s",\n' "$COMMIT"
        printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
        printf '  "benchtime": "%s",\n' "$BENCHTIME"
        printf '  "benchstat_text": "%s"\n' "$(json_escape < "$txt")"
        printf '}\n'
    } > "$json"

    n=$((n + 1))
done

# Forward-path tracing overhead: run the untraced and traced variants
# side by side with allocation accounting, so every bench run records
# whether hop tracing stays allocation-free on the hot path. The raw
# numbers land in FORWARD_PATH.txt next to the BENCH_<n> sets.
fp="$OUT/FORWARD_PATH.txt"
echo "forward-path traced-vs-untraced (benchtime=$BENCHTIME) -> $fp" >&2
{
    echo "# Forward-path hop-tracing overhead (ns/op, B/op, allocs/op)"
    echo "# BenchmarkForwardPath/raw = tracer constructed but disabled;"
    echo "# BenchmarkForwardPathTraced = tracer enabled, all three hops observed."
    go test -run '^$' -bench 'BenchmarkForwardPath' -benchmem -benchtime "$BENCHTIME" .
} > "$fp"

# Matching-engine scaling curve: the predicate-indexed engine against
# the counting baseline across population sizes, with p50/p99 per-event
# latency extras. This is the headline number for broker matching; the
# raw curve lands in INDEXED_MATCH.txt next to the BENCH_<n> sets.
im="$OUT/INDEXED_MATCH.txt"
echo "indexed-match scaling curve (benchtime=$BENCHTIME) -> $im" >&2
{
    echo "# Match cost per event (ns/op, plus p50-ns/p99-ns sampled per event)"
    echo "# counting = per-attribute counting index; indexed = predicate-indexed"
    echo "# engine (sorted threshold cores, per-length prefix/suffix postings,"
    echo "# paired access-threshold groups)."
    go test -run '^$' -bench 'BenchmarkIndexedMatch' -benchmem -benchtime "$BENCHTIME" ./internal/index/
} > "$im"

# Partition fan-in decision: the per-publish cost sharding adds ahead
# of the forward path (hash key fields, map to a partition, look up the
# owning replica). Gate headline is allocs/op = 0; the raw numbers land
# in PARTITION_FANIN.txt next to the BENCH_<n> sets.
pf="$OUT/PARTITION_FANIN.txt"
echo "partition fan-in decision (benchtime=$BENCHTIME) -> $pf" >&2
{
    echo "# Publisher-side partition decision (ns/op, B/op, allocs/op)"
    echo "# KeyOf -> PartitionOf -> Owner over pre-encoded wire events,"
    echo "# 64 partitions rendezvous-hashed across 8 replicas."
    go test -run '^$' -bench 'BenchmarkPartitionedFanIn' -benchmem -benchtime "$BENCHTIME" .
} > "$pf"

echo "wrote $COUNT result set(s) to $OUT/" >&2
