package eventsys

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"eventsys/internal/filter"
	"eventsys/internal/workload"
)

// TestSystemIntegration drives one System with everything at once:
// three event classes (two in a type hierarchy), typed and untyped
// subscribers, wildcard subscriptions, a durable subscriber detaching
// mid-stream, and both matching engines — cross-checked against direct
// filter evaluation.
func TestSystemIntegration(t *testing.T) {
	for _, engine := range []EngineKind{EngineNaive, EngineCounting} {
		t.Run(engine.String(), func(t *testing.T) {
			sys := newSystem(t, Options{
				Fanouts: []int{1, 3, 9},
				Seed:    77,
				Engine:  engine,
			})
			// Type hierarchy: TechStock <: Stock.
			for _, reg := range [][2]string{{"Stock", ""}, {"TechStock", "Stock"}, {"Auction", ""}} {
				if err := sys.RegisterType(reg[0], reg[1]); err != nil {
					t.Fatal(err)
				}
			}
			for _, ad := range [][]string{
				{"Stock", "symbol", "price"},
				{"TechStock", "symbol", "price"},
				{"Auction", "product", "kind", "capacity", "price"},
			} {
				if err := sys.Advertise(ad[0], ad[1:]...); err != nil {
					t.Fatal(err)
				}
			}

			// Subscriber population; each records delivered event IDs.
			type subscriber struct {
				text string
				sub  *Subscription
				seen map[uint64]int
				mu   sync.Mutex
			}
			mkSub := func(id, text string, durable bool) *subscriber {
				sc := &subscriber{text: text, seen: make(map[uint64]int)}
				record := func(e *Event) {
					sc.mu.Lock()
					sc.seen[e.ID]++
					sc.mu.Unlock()
				}
				var err error
				if durable {
					sc.sub, err = sys.SubscribeDurable(id, text, record)
				} else {
					sc.sub, err = sys.Subscribe(id, text, record)
				}
				if err != nil {
					t.Fatalf("subscribe %s: %v", id, err)
				}
				return sc
			}
			subs := []*subscriber{
				mkSub("exact", `class = "Stock" && symbol = "SYM01" && price < 50`, false),
				mkSub("typebased", `class = "Stock"`, false), // matches TechStock too
				mkSub("wildcard", `class = "Auction" && product = "Vehicle"`, false),
				mkSub("range", `class = "Auction" && capacity < 2500 && price < 25000`, false),
				mkSub("disjunct", `class = "TechStock" || class = "Auction" && kind = "Car"`, false),
				mkSub("durable", `class = "Stock" && price < 30`, true),
			}

			// Publish a mixed stream; detach the durable subscriber for
			// the middle third.
			stocks, err := workload.NewStocks(7, workload.DefaultStocks())
			if err != nil {
				t.Fatal(err)
			}
			auctions, err := workload.NewAuctions(8)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewPCG(9, 10))
			published := make([]*Event, 0, 600)
			const total = 600
			for i := 0; i < total; i++ {
				if i == total/3 {
					if err := subs[5].sub.Detach(); err != nil {
						t.Fatal(err)
					}
				}
				if i == 2*total/3 {
					if err := subs[5].sub.Resume(func(e *Event) {
						subs[5].mu.Lock()
						subs[5].seen[e.ID]++
						subs[5].mu.Unlock()
					}); err != nil {
						t.Fatal(err)
					}
				}
				var e *Event
				switch rng.IntN(3) {
				case 0:
					e = stocks.Event()
				case 1:
					e = stocks.Event()
					e.Type = "TechStock"
				default:
					e = auctions.Event()
				}
				if err := sys.Publish(e); err != nil {
					t.Fatal(err)
				}
				published = append(published, e)
			}
			sys.Flush()

			// Oracle: direct evaluation with subtype conformance.
			conf := fakeHierarchy{"TechStock": "Stock"}
			for _, sc := range subs {
				parsed, err := filter.Parse(sc.text)
				if err != nil {
					t.Fatal(err)
				}
				want := 0
				for _, e := range published {
					if parsed.Matches(e, conf) {
						want++
					}
				}
				sc.mu.Lock()
				got := len(sc.seen)
				dups := 0
				for _, n := range sc.seen {
					if n > 1 {
						dups++
					}
				}
				sc.mu.Unlock()
				if got != want {
					t.Errorf("%s: delivered %d distinct events, oracle wants %d", sc.text, got, want)
				}
				if dups != 0 {
					t.Errorf("%s: %d duplicated deliveries", sc.text, dups)
				}
			}
		})
	}
}

// fakeHierarchy maps subtype -> direct parent.
type fakeHierarchy map[string]string

func (h fakeHierarchy) Conforms(sub, super string) bool {
	for cur := sub; cur != ""; cur = h[cur] {
		if cur == super {
			return true
		}
	}
	return super == "Event"
}

// TestSystemSoak pushes a larger population through the overlay and
// verifies aggregate delivery counts against the oracle.
func TestSystemSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	sys := newSystem(t, Options{Fanouts: []int{1, 4, 16}, Seed: 123})
	if err := sys.Advertise("Stock", "symbol", "price"); err != nil {
		t.Fatal(err)
	}
	const nSubs, nEvents = 300, 3000
	type rec struct {
		f     *filter.Filter
		count int
		mu    sync.Mutex
	}
	recs := make([]*rec, nSubs)
	rng := rand.New(rand.NewPCG(5, 6))
	for i := range recs {
		sym := fmt.Sprintf("SYM%02d", rng.IntN(40))
		limit := 10 + rng.IntN(90)
		text := fmt.Sprintf(`class = "Stock" && symbol = %q && price < %d`, sym, limit)
		r := &rec{f: filter.MustParseFilter(text)}
		recs[i] = r
		if _, err := sys.Subscribe(fmt.Sprintf("s%03d", i), text, func(*Event) {
			r.mu.Lock()
			r.count++
			r.mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	stocks, err := workload.NewStocks(11, workload.StocksConfig{Symbols: 40, MinPrice: 1, MaxPrice: 100})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, nSubs)
	for i := 0; i < nEvents; i++ {
		e := stocks.Event()
		for j, r := range recs {
			if r.f.Matches(e, nil) {
				want[j]++
			}
		}
		if err := sys.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	sys.Flush()
	for i, r := range recs {
		r.mu.Lock()
		got := r.count
		r.mu.Unlock()
		if got != want[i] {
			t.Errorf("subscriber %d: delivered %d, want %d", i, got, want[i])
		}
	}
}
