package eventsys

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Stock mirrors the paper's running example with accessor-based
// encapsulation: unexported state, Get-prefixed access methods.
type Stock struct {
	Symbol string
	Price  float64
}

func newSystem(t *testing.T, opts Options) *System {
	t.Helper()
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

func TestQuickstartFlow(t *testing.T) {
	sys := newSystem(t, Options{Seed: 1})
	if err := sys.Advertise("Stock", "symbol", "price"); err != nil {
		t.Fatal(err)
	}
	var got []Stock
	var mu sync.Mutex
	sub, err := SubscribeObject(sys, "me",
		`class = "Stock" && symbol = "ACME" && price < 10`,
		func(s Stock) {
			mu.Lock()
			got = append(got, s)
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{9.5, 12.0, 3.2} {
		if err := PublishObject(sys, "Stock", Stock{Symbol: "ACME", Price: p}); err != nil {
			t.Fatal(err)
		}
	}
	if err := PublishObject(sys, "Stock", Stock{Symbol: "OTHER", Price: 1}); err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("handler got %v, want 2 stocks", got)
	}
	for _, s := range got {
		if s.Symbol != "ACME" || s.Price >= 10 {
			t.Errorf("wrong object delivered: %+v", s)
		}
	}
	if sub.Delivered() != 2 {
		t.Errorf("Delivered = %d", sub.Delivered())
	}
	if sub.Broker() == "" {
		t.Error("Broker() empty")
	}
}

func TestUntypedSubscribe(t *testing.T) {
	sys := newSystem(t, Options{Seed: 2})
	var count atomic.Uint64
	_, err := sys.Subscribe("u1", `class = "Reading" && celsius > 30`, func(e *Event) {
		count.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Publish(NewEvent("Reading").Float("celsius", 35).Build())
	sys.Publish(NewEvent("Reading").Float("celsius", 20).Build())
	sys.Flush()
	if count.Load() != 1 {
		t.Errorf("count = %d, want 1", count.Load())
	}
}

func TestDisjunctionSubscription(t *testing.T) {
	sys := newSystem(t, Options{Seed: 3})
	var count atomic.Uint64
	_, err := sys.Subscribe("d1",
		`class = "A" && x = 1 || class = "B"`,
		func(*Event) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	sys.Publish(NewEvent("A").Int("x", 1).Build())
	sys.Publish(NewEvent("A").Int("x", 2).Build())
	sys.Publish(NewEvent("B").Build())
	sys.Flush()
	if count.Load() != 2 {
		t.Errorf("count = %d, want 2", count.Load())
	}
}

func TestTypeHierarchySubscription(t *testing.T) {
	sys := newSystem(t, Options{Seed: 4})
	if err := sys.RegisterType("Quote", ""); err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterType("Stock", "Quote"); err != nil {
		t.Fatal(err)
	}
	var count atomic.Uint64
	if _, err := sys.Subscribe("t1", `class = "Quote"`, func(*Event) { count.Add(1) }); err != nil {
		t.Fatal(err)
	}
	sys.Publish(NewEvent("Stock").Str("symbol", "X").Build()) // subtype
	sys.Publish(NewEvent("Quote").Build())                    // exact
	sys.Publish(NewEvent("Auction").Build())                  // unrelated
	sys.Flush()
	if count.Load() != 2 {
		t.Errorf("count = %d, want 2 (subtype polymorphism)", count.Load())
	}
}

// buyPredicate reimplements the paper's BuyFilter as a stateful local
// predicate: match when the price dropped below threshold × last match.
func TestStatefulLocalPredicate(t *testing.T) {
	sys := newSystem(t, Options{Seed: 5})
	if err := sys.Advertise("Stock", "symbol", "price"); err != nil {
		t.Fatal(err)
	}
	last := 0.0
	var matches []float64
	var mu sync.Mutex
	_, err := SubscribeObjectWhere(sys, "buyer",
		`class = "Stock" && symbol = "Foo" && price < 10.0`, // f1: weakened broker-side form
		func(s Stock) bool { // BuyFilter.match: stateful, edge-only
			match := last != 0 && s.Price <= last*0.95
			last = s.Price
			return match
		},
		func(s Stock) {
			mu.Lock()
			matches = append(matches, s.Price)
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{9.0, 8.9, 8.0, 9.9, 8.0} {
		if err := PublishObject(sys, "Stock", Stock{Symbol: "Foo", Price: p}); err != nil {
			t.Fatal(err)
		}
	}
	sys.Flush()
	mu.Lock()
	defer mu.Unlock()
	// 8.0 <= 8.9*0.95 and 8.0 <= 9.9*0.95 match; others do not.
	if len(matches) != 2 || matches[0] != 8.0 || matches[1] != 8.0 {
		t.Errorf("matches = %v, want [8 8]", matches)
	}
}

func TestObjectTypeMismatchDropped(t *testing.T) {
	sys := newSystem(t, Options{Seed: 6})
	type Alert struct{ Level int64 }
	var count atomic.Uint64
	if _, err := SubscribeObject(sys, "o1", `class = "Any"`, func(a Alert) { count.Add(1) }); err != nil {
		t.Fatal(err)
	}
	// An untyped event with no payload cannot decode into Alert.
	sys.Publish(NewEvent("Any").Int("level", 3).Build())
	// A properly typed object decodes.
	if err := PublishObject(sys, "Any", Alert{Level: 2}); err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	if count.Load() != 1 {
		t.Errorf("count = %d, want 1 (undecodable payload dropped)", count.Load())
	}
}

func TestSubscribeErrors(t *testing.T) {
	sys := newSystem(t, Options{Seed: 7})
	if _, err := sys.Subscribe("e1", `class <`, func(*Event) {}); err == nil {
		t.Error("bad filter text should fail")
	}
	if _, err := sys.SubscribeWhere("e2", `x = 1`, nil, func(*Event) {}); err == nil {
		t.Error("nil predicate should fail")
	}
	if _, err := SubscribeObject[Stock](sys, "e3", `x = 1`, nil); err == nil {
		t.Error("nil handler should fail")
	}
	if err := sys.Advertise("", "a"); err == nil {
		t.Error("empty class advert should fail")
	}
}

func TestUnsubscribeViaFacade(t *testing.T) {
	sys := newSystem(t, Options{Seed: 8})
	var count atomic.Uint64
	sub, err := sys.Subscribe("u1", `class = "E"`, func(*Event) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	sys.Publish(NewEvent("E").Build())
	sys.Flush()
	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	sys.Publish(NewEvent("E").Build())
	sys.Flush()
	if count.Load() != 1 {
		t.Errorf("count = %d, want 1", count.Load())
	}
}

func TestStatsExposed(t *testing.T) {
	sys := newSystem(t, Options{Seed: 9, Fanouts: []int{1, 2}})
	if _, err := sys.Subscribe("s1", `class = "E"`, func(*Event) {}); err != nil {
		t.Fatal(err)
	}
	for range 5 {
		sys.Publish(NewEvent("E").Build())
	}
	sys.Flush()
	stats := sys.Stats()
	var rootReceived uint64
	for _, st := range stats {
		if st.Stage == 2 {
			rootReceived = st.Received
		}
	}
	if rootReceived != 5 {
		t.Errorf("root received = %d, want 5", rootReceived)
	}
}

func TestMaintainViaFacade(t *testing.T) {
	sys := newSystem(t, Options{Seed: 10, TTL: time.Minute})
	var count atomic.Uint64
	if _, err := sys.Subscribe("m1", `class = "E"`, func(*Event) { count.Add(1) }); err != nil {
		t.Fatal(err)
	}
	sys.Maintain(time.Now().Add(2 * time.Minute))
	sys.Publish(NewEvent("E").Build())
	sys.Flush()
	if count.Load() != 1 {
		t.Errorf("count = %d after maintain, want 1", count.Load())
	}
}

func TestWildcardSubscriptionViaFacade(t *testing.T) {
	sys := newSystem(t, Options{Seed: 11})
	if err := sys.Advertise("Stock", "symbol", "price"); err != nil {
		t.Fatal(err)
	}
	var count atomic.Uint64
	// price unspecified: a wildcard subscription (Section 4.4); it
	// attaches above stage 1 and still receives everything it wants.
	sub, err := sys.Subscribe("w1", `class = "Stock" && symbol = "A"`, func(*Event) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	sys.Publish(NewEvent("Stock").Str("symbol", "A").Float("price", 1).Build())
	sys.Publish(NewEvent("Stock").Str("symbol", "A").Float("price", 99).Build())
	sys.Publish(NewEvent("Stock").Str("symbol", "B").Float("price", 1).Build())
	sys.Flush()
	if count.Load() != 2 {
		t.Errorf("count = %d, want 2", count.Load())
	}
	_ = sub
}
