package eventsys

import (
	"fmt"
	"sync"
	"testing"
)

// TestDurableBacklogSurvivesRestart is the restart-recovery integration
// test for the durable event store: a durable subscription's undelivered
// backlog must survive a full System close-and-reopen against the same
// DataDir, and Resume must deliver every stored event exactly once, in
// publish order, before any post-restart event.
func TestDurableBacklogSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() *System {
		sys, err := New(Options{Seed: 42, DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Advertise("Job", "queue", "priority"); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	pub := func(sys *System, prio int64) {
		e := NewEvent("Job").Str("queue", "builds").Int("priority", prio).Build()
		if err := sys.Publish(e); err != nil {
			t.Fatal(err)
		}
	}

	// Incarnation 1: subscribe durably, receive one live event, detach,
	// accumulate a backlog, close.
	sys := open()
	var mu sync.Mutex
	var got []int64
	record := func(e *Event) {
		v, _ := e.Lookup("priority")
		mu.Lock()
		got = append(got, v.IntVal())
		mu.Unlock()
	}
	sub, err := sys.SubscribeDurable("worker", `class = "Job" && queue = "builds"`, record)
	if err != nil {
		t.Fatal(err)
	}
	pub(sys, 1)
	sys.Flush()
	if err := sub.Detach(); err != nil {
		t.Fatal(err)
	}
	for prio := int64(2); prio <= 6; prio++ {
		pub(sys, prio)
	}
	sys.Flush()
	if n := sub.Backlog(); n != 5 {
		t.Fatalf("backlog before restart = %d, want 5", n)
	}
	sys.Close()

	// Incarnation 2: same DataDir, same subscriber ID. The stored backlog
	// is recovered; the subscription starts detached.
	sys = open()
	defer sys.Close()
	sub, err = sys.SubscribeDurable("worker", `class = "Job" && queue = "builds"`, record)
	if err != nil {
		t.Fatal(err)
	}
	if n := sub.Backlog(); n != 5 {
		t.Fatalf("backlog after restart = %d, want 5", n)
	}
	// Events published before Resume extend the stored backlog.
	pub(sys, 7)
	sys.Flush()
	mu.Lock()
	if len(got) != 1 {
		t.Fatalf("delivered while recovered-detached: %v", got)
	}
	mu.Unlock()

	if err := sub.Resume(record); err != nil {
		t.Fatal(err)
	}
	pub(sys, 8) // live again after the drain
	sys.Flush()

	mu.Lock()
	defer mu.Unlock()
	want := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("delivered %v, want %v (stored backlog exactly once, in order)", got, want)
	}

	st, ok := sys.StoreStats()
	if !ok {
		t.Fatal("StoreStats: no store despite DataDir")
	}
	if st.Replayed != 6 || st.Pending != 0 {
		t.Fatalf("store stats = %+v, want 6 replayed, 0 pending", st)
	}
}

// TestDurableRestartStoreMetrics checks that the durable store's traffic
// shows up in the per-node Stats snapshot.
func TestDurableRestartStoreMetrics(t *testing.T) {
	dir := t.TempDir()
	sys, err := New(Options{Seed: 7, DataDir: dir, Durability: DurabilityAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Advertise("Job", "queue"); err != nil {
		t.Fatal(err)
	}
	sub, err := sys.SubscribeDurable("w", `class = "Job"`, func(*Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Detach(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sys.Publish(NewEvent("Job").Str("queue", "q").Build()); err != nil {
			t.Fatal(err)
		}
	}
	sys.Flush()
	if err := sub.Resume(func(*Event) {}); err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	var found bool
	for _, st := range sys.Stats() {
		if st.NodeID == "w" {
			found = true
			if st.StoreAppended != 3 || st.StoreReplayed != 3 || st.StoredBytes == 0 {
				t.Fatalf("subscriber store counters = %+v", st)
			}
		}
	}
	if !found {
		t.Fatal("no NodeStats entry for subscriber w")
	}
}

// TestUnsubscribeForgetsStoredBacklog: an unsubscribed durable identity
// must not resurrect its backlog on the next subscription.
func TestUnsubscribeForgetsStoredBacklog(t *testing.T) {
	dir := t.TempDir()
	sys, err := New(Options{Seed: 9, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Advertise("Job", "queue"); err != nil {
		t.Fatal(err)
	}
	sub, err := sys.SubscribeDurable("w", `class = "Job"`, func(*Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Detach(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(NewEvent("Job").Str("queue", "q").Build()); err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	sys.Close()

	sys, err = New(Options{Seed: 9, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Advertise("Job", "queue"); err != nil {
		t.Fatal(err)
	}
	sub, err = sys.SubscribeDurable("w", `class = "Job"`, func(*Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if n := sub.Backlog(); n != 0 {
		t.Fatalf("backlog after unsubscribe+restart = %d, want 0", n)
	}
}
