package main

import (
	"testing"
	"time"

	"eventsys/internal/broker"
)

func startTestBroker(t *testing.T) *broker.Server {
	t.Helper()
	srv, err := broker.Serve(broker.ServerConfig{
		ID: "root", Stage: 1, ListenAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func TestRunSubcommandDispatch(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args should fail")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand should fail")
	}
}

func TestRunPubAgainstBroker(t *testing.T) {
	srv := startTestBroker(t)
	err := run([]string{"pub", "-root", srv.Addr(), "-class", "Stock",
		"-attr", `symbol="ACME"`, "-attr", "price=9.5", "-count", "3"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for srv.Stats().Received < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("broker received %d events, want 3", srv.Stats().Received)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRunPubValidation(t *testing.T) {
	srv := startTestBroker(t)
	if err := run([]string{"pub", "-root", srv.Addr()}); err == nil {
		t.Error("missing -class should fail")
	}
	if err := run([]string{"pub", "-root", srv.Addr(), "-class", "X", "-attr", "noequals"}); err == nil {
		t.Error("malformed -attr should fail")
	}
	if err := run([]string{"pub", "-root", srv.Addr(), "-class", "X", "-attr", "a=@@"}); err == nil {
		t.Error("bad literal should fail")
	}
}

func TestRunAdvertiseAgainstBroker(t *testing.T) {
	srv := startTestBroker(t)
	err := run([]string{"advertise", "-root", srv.Addr(),
		"-class", "Stock", "-attrs", "symbol,price", "-stages", "3"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunAdvertiseValidation(t *testing.T) {
	srv := startTestBroker(t)
	if err := run([]string{"advertise", "-root", srv.Addr()}); err == nil {
		t.Error("missing class/attrs should fail")
	}
}

func TestRunSubValidation(t *testing.T) {
	if err := run([]string{"sub"}); err == nil {
		t.Error("missing -filter should fail")
	}
	if err := run([]string{"sub", "-filter", "class <"}); err == nil {
		t.Error("bad filter should fail")
	}
}
