// Command pubsub is a client for networked brokers: publish events, or
// subscribe and print deliveries.
//
// Subscribe (walks the placement protocol from the root broker):
//
//	pubsub sub -root 127.0.0.1:7001 -id alice \
//	    -filter 'class = "Stock" && symbol = "ACME" && price < 10'
//
// Publish (one event per -attr list):
//
//	pubsub pub -root 127.0.0.1:7001 -class Stock \
//	    -attr 'symbol="ACME"' -attr 'price=9.5'
//
// Advertise a schema (enables filter weakening in the hierarchy):
//
//	pubsub advertise -root 127.0.0.1:7001 -class Stock -attrs symbol,price -stages 3
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"eventsys/internal/broker"
	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/typing"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pubsub:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: pubsub <sub|pub|advertise> [flags]")
	}
	switch args[0] {
	case "sub":
		return runSub(args[1:])
	case "pub":
		return runPub(args[1:])
	case "advertise":
		return runAdvertise(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want sub, pub or advertise)", args[0])
	}
}

func runSub(args []string) error {
	fs := flag.NewFlagSet("pubsub sub", flag.ContinueOnError)
	root := fs.String("root", "127.0.0.1:7001", "root broker address")
	id := fs.String("id", "subscriber", "subscriber identity")
	filterText := fs.String("filter", "", "subscription filter (required)")
	group := fs.String("group", "", "consumer group to join (competing delivery: each event goes to exactly one member)")
	renew := fs.Duration("renew", 20*time.Second, "lease renewal period (0 = never)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *filterText == "" {
		return fmt.Errorf("-filter is required")
	}
	f, err := filter.ParseFilter(*filterText)
	if err != nil {
		return err
	}
	sub, err := broker.DialSubscriber(*root, *id, f,
		broker.SubscriberOptions{RenewEvery: *renew, Group: *group},
		func(e *event.Event) { fmt.Println(e) })
	if err != nil {
		return err
	}
	defer sub.Close()
	fmt.Fprintf(os.Stderr, "subscribed as %s; stored filter: %s\n", *id, sub.StoredFilter())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	received, delivered := sub.Stats()
	fmt.Fprintf(os.Stderr, "received %d, delivered %d (MR %.2f)\n",
		received, delivered, ratio(delivered, received))
	return nil
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// attrList collects repeated -attr flags of the form name=literal.
type attrList []string

func (a *attrList) String() string     { return strings.Join(*a, ",") }
func (a *attrList) Set(v string) error { *a = append(*a, v); return nil }

func runPub(args []string) error {
	fs := flag.NewFlagSet("pubsub pub", flag.ContinueOnError)
	root := fs.String("root", "127.0.0.1:7001", "root broker address")
	id := fs.String("id", "publisher", "publisher identity")
	class := fs.String("class", "", "event class (required)")
	count := fs.Int("count", 1, "number of copies to publish")
	var attrs attrList
	fs.Var(&attrs, "attr", `attribute as name=literal, e.g. symbol="ACME" (repeatable)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *class == "" {
		return fmt.Errorf("-class is required")
	}
	b := event.NewBuilder(*class)
	for _, kv := range attrs {
		name, lit, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("bad -attr %q, want name=literal", kv)
		}
		v, err := event.ParseValue(lit)
		if err != nil {
			return err
		}
		b.Val(strings.TrimSpace(name), v)
	}
	e := b.Build()
	pub, err := broker.DialPublisher(*root, *id)
	if err != nil {
		return err
	}
	defer pub.Close()
	for i := 0; i < *count; i++ {
		if err := pub.Publish(e.Clone()); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "published %d × %s\n", *count, e)
	return nil
}

func runAdvertise(args []string) error {
	fs := flag.NewFlagSet("pubsub advertise", flag.ContinueOnError)
	root := fs.String("root", "127.0.0.1:7001", "root broker address")
	class := fs.String("class", "", "event class (required)")
	attrCSV := fs.String("attrs", "", "comma-separated attributes, most general first")
	stages := fs.Int("stages", 3, "stage count of the hierarchy (brokers + subscriber stage)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *class == "" || *attrCSV == "" {
		return fmt.Errorf("-class and -attrs are required")
	}
	ad, err := typing.NewAdvertisement(*class, *stages, strings.Split(*attrCSV, ",")...)
	if err != nil {
		return err
	}
	pub, err := broker.DialPublisher(*root, "advertiser")
	if err != nil {
		return err
	}
	defer pub.Close()
	if err := pub.Advertise(ad); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "advertised %s\n", ad)
	return nil
}
