package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow")
	}
	if err := run([]string{"-experiment", "fig7", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "nosuch"}); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag should fail")
	}
}
