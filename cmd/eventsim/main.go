// Command eventsim reproduces the paper's evaluation (Section 5): the
// RLC table, the Figure 7 matching-rate series, the global-RLC and
// baseline comparisons, and the ablations listed in DESIGN.md.
//
// Usage:
//
//	eventsim -experiment table1           # one experiment
//	eventsim -experiment all              # everything, in report order
//	eventsim -list                        # available experiments
//	eventsim -experiment fig7 -seed 42    # different population
package main

import (
	"flag"
	"fmt"
	"os"

	"eventsys/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eventsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eventsim", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "experiment id or 'all'")
	seed := fs.Uint64("seed", 1, "random seed for the population")
	list := fs.Bool("list", false, "list experiment ids and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, name := range sim.Experiments() {
			fmt.Println(name)
		}
		return nil
	}
	names := sim.Experiments()
	if *experiment != "all" {
		names = []string{*experiment}
	}
	for i, name := range names {
		out, err := sim.RunExperiment(name, *seed)
		if err != nil {
			return err
		}
		if i > 0 {
			fmt.Println()
			fmt.Println("────────────────────────────────────────────────────────")
			fmt.Println()
		}
		fmt.Print(out)
	}
	return nil
}
