// Command eventsim reproduces the paper's evaluation (Section 5): the
// RLC table, the Figure 7 matching-rate series, the global-RLC and
// baseline comparisons, and the ablations listed in DESIGN.md.
//
// Usage:
//
//	eventsim -experiment table1           # one experiment
//	eventsim -experiment all              # everything, in report order
//	eventsim -list                        # available experiments
//	eventsim -experiment fig7 -seed 42    # different population
//	eventsim -experiment engines -shards 8 -max-batch 256 -subs 10000
//
// It also fronts the deterministic cluster simulator:
//
//	eventsim -experiment cluster          # run the scenario suite
//	eventsim -scenarios                   # list cluster scenarios
//	eventsim -scenario crash-recovery-chain -seed 7
//	eventsim -digests                     # scenario digests (CI gate)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"eventsys/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eventsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eventsim", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "experiment id or 'all'")
	seed := fs.Uint64("seed", 1, "random seed for the population")
	list := fs.Bool("list", false, "list experiment ids and exit")
	shards := fs.Int("shards", 0, "shard count for the engines experiment (0 = GOMAXPROCS)")
	maxBatch := fs.Int("max-batch", 0, "matching batch size for the engines experiment (0 = 64)")
	subs := fs.Int("subs", 0, "population size for the engines experiment (0 = 5000)")
	flowWindow := fs.Int("flow-window", 0, "delivery-queue window for the flow experiment (0 = 64)")
	scenario := fs.String("scenario", "", "run one cluster scenario and report its result")
	scenarios := fs.Bool("scenarios", false, "list cluster scenarios and exit")
	digests := fs.Bool("digests", false, "print every cluster scenario's digest and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := sim.Options{Shards: *shards, MaxBatch: *maxBatch, Subscribers: *subs, FlowWindow: *flowWindow}
	if *list {
		for _, name := range sim.Experiments() {
			fmt.Println(name)
		}
		return nil
	}
	if *scenarios {
		for _, sc := range sim.Scenarios() {
			fmt.Printf("%-22s %s\n", sc.Name, sc.About)
		}
		return nil
	}
	if *digests {
		out, err := sim.ScenarioDigests(*seed)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	if *scenario != "" {
		res, err := sim.RunScenario(*scenario, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("scenario  %s (seed %d)\n", *scenario, *seed)
		fmt.Printf("digest    %s (%d lines)\n", res.Digest, res.DigestLines)
		fmt.Printf("ledger    %+v\n", res.Ledger)
		fmt.Printf("latency   p50=%dus p99=%dus (publish to delivery)\n", res.LatencyP50US, res.LatencyP99US)
		fmt.Printf("time      %v virtual, %d events, %v wall\n",
			time.Duration(res.VirtualUS)*time.Microsecond, res.Events, res.Wall)
		for _, b := range res.Brokers {
			fmt.Printf("broker %d  up=%t recv=%d sent=%d lost=%d spooled=%d pending=%d filters=%d\n",
				b.ID, b.Up, b.Received, b.Sent, b.Lost, b.Spooled, b.Pending, b.Filters)
		}
		return nil
	}
	names := sim.Experiments()
	if *experiment != "all" {
		names = []string{*experiment}
	}
	for i, name := range names {
		out, err := sim.RunExperimentOpts(name, *seed, opts)
		if err != nil {
			return err
		}
		if i > 0 {
			fmt.Println()
			fmt.Println("────────────────────────────────────────────────────────")
			fmt.Println()
		}
		fmt.Print(out)
	}
	return nil
}
