// Command broker runs one node of a networked multi-stage event broker
// hierarchy (Section 4's architecture over TCP).
//
// A three-node hierarchy on one machine:
//
//	broker -id root -stage 2 -listen 127.0.0.1:7001
//	broker -id N1.1 -stage 1 -listen 127.0.0.1:7002 -parent 127.0.0.1:7001
//	broker -id N1.2 -stage 1 -listen 127.0.0.1:7003 -parent 127.0.0.1:7001
//
// Publishers and subscribers connect with the pubsub command.
//
// Brokers can also federate as peers over an acyclic mesh instead of
// (or in addition to) the hierarchy — each -peer edge is configured on
// exactly one side, the other side only accepts:
//
//	broker -id geneva -listen 127.0.0.1:7001
//	broker -id zurich -listen 127.0.0.1:7002 -peer 127.0.0.1:7001
//	broker -id basel  -listen 127.0.0.1:7003 -peer 127.0.0.1:7002 -peer-max-stage 2
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"eventsys/internal/broker"
	"eventsys/internal/flow"
	"eventsys/internal/index"
	"eventsys/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "broker:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("broker", flag.ContinueOnError)
	id := fs.String("id", "", "broker identity (required, e.g. N2.1)")
	stage := fs.Int("stage", 1, "filtering stage (1 = closest to subscribers)")
	listen := fs.String("listen", "127.0.0.1:7001", "TCP listen address")
	parent := fs.String("parent", "", "parent broker address (empty = root)")
	ttl := fs.Duration("ttl", time.Minute, "subscription lease TTL (0 = never expire)")
	engine := fs.String("engine", "naive", "matching engine: naive, counting, or sharded")
	shards := fs.Int("shards", 0, "shard count for -engine sharded (0 = GOMAXPROCS)")
	maxBatch := fs.Int("max-batch", 0, "events coalesced per matching pass (0 = default 64, 1 = no batching)")
	var peers []string
	fs.Func("peer", "peer broker address to federate with (repeatable; each edge on one side only)", func(v string) error {
		peers = append(peers, v)
		return nil
	})
	peerMaxStage := fs.Int("peer-max-stage", 0, "clamp on hop-distance weakening of peer subscription state (0 = full filters)")
	dataDir := fs.String("data-dir", "", "durable event store directory (empty = no persistence)")
	fsync := fs.String("fsync", "batched", "store fsync policy: batched, always, or never")
	storeMax := fs.Int64("store-max-bytes", 0, "bound on the store's retained log (0 = unbounded)")
	flowPolicy := fs.String("flow-policy", "block", "slow-consumer policy: block, drop-newest, drop-oldest, or spill")
	flowWindow := fs.Int("flow-window", 0, "queue bound and sender credit window (0 = default 1024)")
	obsAddr := fs.String("obs-addr", "", "observability HTTP listen address serving /metrics, /healthz, /readyz, /debug/status and /debug/pprof (empty = disabled)")
	trace := fs.Bool("trace", false, "record hop-level latency histograms (match/forward/deliver) on /metrics")
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var syncEvery int
	switch *fsync {
	case "batched":
		syncEvery = 0
	case "always":
		syncEvery = 1
	case "never":
		syncEvery = -1
	default:
		return fmt.Errorf("unknown -fsync policy %q (want batched, always, or never)", *fsync)
	}
	kind, err := index.ParseKind(*engine)
	if err != nil {
		return err
	}
	policy, err := flow.ParsePolicy(*flowPolicy)
	if err != nil {
		return err
	}
	level := new(slog.LevelVar)
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", *logLevel)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	reg := obs.NewRegistry()
	srv, err := broker.Serve(broker.ServerConfig{
		ID:            *id,
		Stage:         *stage,
		ListenAddr:    *listen,
		ParentAddr:    *parent,
		Peers:         peers,
		PeerMaxStage:  *peerMaxStage,
		TTL:           *ttl,
		Engine:        kind,
		Shards:        *shards,
		MaxBatch:      *maxBatch,
		Logger:        logger,
		DataDir:       *dataDir,
		SyncEvery:     syncEvery,
		StoreMaxBytes: *storeMax,
		FlowPolicy:    policy,
		FlowWindow:    *flowWindow,
		Obs:           reg,
		Trace:         *trace,
	})
	if err != nil {
		return err
	}
	var osrv *obs.Server
	if *obsAddr != "" {
		osrv, err = obs.Serve(*obsAddr, reg)
		if err != nil {
			srv.Close()
			return err
		}
		fmt.Printf("observability on http://%s/metrics\n", osrv.Addr())
	}
	fmt.Printf("broker %s (stage %d) listening on %s\n", *id, *stage, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	// Flip /healthz first, then drain the broker while the listener
	// still serves the 503, then stop the listener.
	reg.SetHealthy(false)
	srv.Close()
	if osrv != nil {
		_ = osrv.Close()
	}
	return nil
}
