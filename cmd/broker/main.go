// Command broker runs one node of a networked multi-stage event broker
// hierarchy (Section 4's architecture over TCP).
//
// A three-node hierarchy on one machine:
//
//	broker -id root -stage 2 -listen 127.0.0.1:7001
//	broker -id N1.1 -stage 1 -listen 127.0.0.1:7002 -parent 127.0.0.1:7001
//	broker -id N1.2 -stage 1 -listen 127.0.0.1:7003 -parent 127.0.0.1:7001
//
// Publishers and subscribers connect with the pubsub command.
//
// Brokers can also federate as peers over a mesh instead of (or in
// addition to) the hierarchy — each -peer edge is configured on exactly
// one side, the other side only accepts. The mesh may contain cycles: a
// deterministic spanning-tree election picks the links that carry
// traffic and holds redundant links as standby failover paths, so a
// ring survives any single broker death without operator action:
//
//	broker -id geneva -listen 127.0.0.1:7001
//	broker -id zurich -listen 127.0.0.1:7002 -peer 127.0.0.1:7001
//	broker -id basel  -listen 127.0.0.1:7003 -peer 127.0.0.1:7002 -peer 127.0.0.1:7001
//
// The peer set is runtime-mutable: list addresses (one per line, #
// comments) in a file passed as -peers-file and send SIGHUP to re-read
// it — added addresses are dialed, removed ones hung up, and the
// election re-runs, all without restarting the broker.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"eventsys/internal/broker"
	"eventsys/internal/flow"
	"eventsys/internal/index"
	"eventsys/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "broker:", err)
		os.Exit(1)
	}
}

// readPeersFile parses a peers file: one address per line, blank lines
// and #-comments ignored.
func readPeersFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("peers file: %w", err)
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if line = strings.TrimSpace(line); line != "" {
			out = append(out, line)
		}
	}
	return out, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("broker", flag.ContinueOnError)
	id := fs.String("id", "", "broker identity (required, e.g. N2.1)")
	stage := fs.Int("stage", 1, "filtering stage (1 = closest to subscribers)")
	listen := fs.String("listen", "127.0.0.1:7001", "TCP listen address")
	parent := fs.String("parent", "", "parent broker address (empty = root)")
	ttl := fs.Duration("ttl", time.Minute, "subscription lease TTL (0 = never expire)")
	engine := fs.String("engine", "naive", "matching engine: naive, counting, sharded, or indexed")
	shards := fs.Int("shards", 0, "shard count for -engine sharded (0 = GOMAXPROCS)")
	maxBatch := fs.Int("max-batch", 0, "events coalesced per matching pass (0 = default 64, 1 = no batching)")
	var peers []string
	fs.Func("peer", "peer broker address to federate with (repeatable; each edge on one side only)", func(v string) error {
		peers = append(peers, v)
		return nil
	})
	peerMaxStage := fs.Int("peer-max-stage", 0, "clamp on hop-distance weakening of peer subscription state (0 = full filters)")
	replicaOf := fs.String("replica-of", "", "replica group to join for partitioned scale-out (empty = unpartitioned; members must also be federated via -peer)")
	partitions := fs.Int("partitions", 0, "partition count for the -replica-of group (0 = default 64; must match across the group)")
	peersFile := fs.String("peers-file", "", "file of peer addresses (one per line, # comments) re-read on SIGHUP for runtime re-peering")
	heartbeat := fs.Duration("peer-heartbeat", 0, "PeerPing interval on federation links (0 = default 2s, negative = disabled)")
	deadTimeout := fs.Duration("peer-dead-timeout", 0, "silence after which a federation link is declared dead (0 = 4x heartbeat)")
	dataDir := fs.String("data-dir", "", "durable event store directory (empty = no persistence)")
	fsync := fs.String("fsync", "batched", "store fsync policy: batched, always, or never")
	storeMax := fs.Int64("store-max-bytes", 0, "bound on the store's retained log (0 = unbounded)")
	flowPolicy := fs.String("flow-policy", "block", "slow-consumer policy: block, drop-newest, drop-oldest, or spill")
	flowWindow := fs.Int("flow-window", 0, "queue bound and sender credit window (0 = default 1024)")
	obsAddr := fs.String("obs-addr", "", "observability HTTP listen address serving /metrics, /healthz, /readyz, /debug/status and /debug/pprof (empty = disabled)")
	trace := fs.Bool("trace", false, "record hop-level latency histograms (match/forward/deliver) on /metrics")
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var syncEvery int
	switch *fsync {
	case "batched":
		syncEvery = 0
	case "always":
		syncEvery = 1
	case "never":
		syncEvery = -1
	default:
		return fmt.Errorf("unknown -fsync policy %q (want batched, always, or never)", *fsync)
	}
	kind, err := index.ParseKind(*engine)
	if err != nil {
		return err
	}
	policy, err := flow.ParsePolicy(*flowPolicy)
	if err != nil {
		return err
	}
	level := new(slog.LevelVar)
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", *logLevel)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	staticPeers := append([]string(nil), peers...) // -peer flags: intended across re-reads
	if *peersFile != "" {
		fromFile, err := readPeersFile(*peersFile)
		if err != nil {
			return err
		}
		peers = append(peers, fromFile...)
	}
	reg := obs.NewRegistry()
	srv, err := broker.Serve(broker.ServerConfig{
		ID:                *id,
		Stage:             *stage,
		ListenAddr:        *listen,
		ParentAddr:        *parent,
		Peers:             peers,
		HeartbeatInterval: *heartbeat,
		DeadLinkTimeout:   *deadTimeout,
		PeerMaxStage:      *peerMaxStage,
		ReplicaOf:         *replicaOf,
		Partitions:        *partitions,
		TTL:               *ttl,
		Engine:            kind,
		Shards:            *shards,
		MaxBatch:          *maxBatch,
		Logger:            logger,
		DataDir:           *dataDir,
		SyncEvery:         syncEvery,
		StoreMaxBytes:     *storeMax,
		FlowPolicy:        policy,
		FlowWindow:        *flowWindow,
		Obs:               reg,
		Trace:             *trace,
	})
	if err != nil {
		return err
	}
	var osrv *obs.Server
	if *obsAddr != "" {
		osrv, err = obs.Serve(*obsAddr, reg)
		if err != nil {
			srv.Close()
			return err
		}
		fmt.Printf("observability on http://%s/metrics\n", osrv.Addr())
	}
	fmt.Printf("broker %s (stage %d) listening on %s\n", *id, *stage, srv.Addr())

	if *peersFile != "" {
		// SIGHUP re-reads the peers file and re-peers at runtime: -peer
		// flags stay intended, file addresses come and go with the file.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				fromFile, err := readPeersFile(*peersFile)
				if err != nil {
					logger.Warn("peers file re-read failed", "path", *peersFile, "err", err)
					continue
				}
				srv.SetPeers(append(append([]string(nil), staticPeers...), fromFile...))
				logger.Info("re-peered from file", "path", *peersFile, "peers", len(fromFile))
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	// Flip /healthz first, then drain the broker while the listener
	// still serves the 503, then stop the listener.
	reg.SetHealthy(false)
	srv.Close()
	if osrv != nil {
		_ = osrv.Close()
	}
	return nil
}
