package main

import "testing"

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag should fail")
	}
}

func TestRunMissingID(t *testing.T) {
	if err := run([]string{"-listen", "127.0.0.1:0"}); err == nil {
		t.Error("missing -id should fail")
	}
}

func TestRunBadStage(t *testing.T) {
	if err := run([]string{"-id", "x", "-stage", "0", "-listen", "127.0.0.1:0"}); err == nil {
		t.Error("stage 0 should fail")
	}
}

func TestRunUnreachableParent(t *testing.T) {
	if err := run([]string{"-id", "x", "-stage", "1",
		"-listen", "127.0.0.1:0", "-parent", "127.0.0.1:1"}); err == nil {
		t.Error("unreachable parent should fail")
	}
}
